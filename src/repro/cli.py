"""Command-line interface: regenerate the paper's tables and figures,
run the unified benchmark harness, and run the simulation service.

Usage::

    python -m repro list
    python -m repro table 3.3
    python -m repro figure 3.14
    python -m repro all
    python -m repro bench --quick
    python -m repro bench cfm interleaved --out results/
    python -m repro serve --port 7341 --shards 4
    python -m repro serve --stdio < requests.jsonl

Analytic artifacts print instantly; simulated ones (figures 2.1, 3.13,
3.14 measured points, 4.1, 5.5) run their slot-accurate simulations first.
``bench`` writes one machine-readable ``BENCH_<name>.json`` per benchmark
(see :mod:`repro.obs.bench` for the schema).  ``serve`` runs the sharded
async simulation service (:mod:`repro.serve`): JSONL requests in, streamed
responses out, with warm per-shard table caches and bounded in-flight
depth.

Unknown table/figure/bench IDs exit with status 2 and the list of valid
IDs on stderr — never a traceback.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict

from repro.report import emit_series, emit_table


# --------------------------------------------------------------------------
# Tables


def table_3_1() -> None:
    """Regenerate Table 3.1 (address path connections)."""
    from repro.core.switch import address_path_table

    table = address_path_table(4, 2)
    rows = []
    for t, row in enumerate(table):
        cells = [f"P{row[b]}" if b in row else "" for b in range(8)]
        rows.append([f"Slot {t}"] + cells)
    emit_table("Table 3.1: address path connections (4 procs, c=2)",
               ["slot"] + [f"B{b}" for b in range(8)], rows)


def table_3_3() -> None:
    """Regenerate Table 3.3 (configuration tradeoff)."""
    from repro.core.config import tradeoff_table

    rows = tradeoff_table(256, 2)
    emit_table(
        "Table 3.3: CFM configuration tradeoff (l=256, c=2)",
        ["banks", "word width", "memory latency", "processors"],
        [(r.n_banks, r.word_width, r.memory_latency, r.n_procs) for r in rows],
    )


def table_3_4() -> None:
    """Regenerate Table 3.4 (synchronous omega switch states)."""
    from repro.network.synchronous import SynchronousOmegaNetwork

    table = SynchronousOmegaNetwork(8).state_table()
    rows = [
        [f"Slot {t}"] + [" ".join(map(str, col)) for col in cols]
        for t, cols in enumerate(table)
    ]
    emit_table(
        "Table 3.4: 8x8 synchronous omega switch states "
        "(0=straight, 1=interchange)",
        ["slot", "column 0", "column 1", "column 2"],
        rows,
    )


def table_3_5() -> None:
    """Regenerate Table 3.5 (64-bank configurations)."""
    from repro.network.partial import configuration_table

    rows = configuration_table(64)
    emit_table(
        "Table 3.5: 64-bank multiprocessor configurations",
        ["modules", "banks/module", "block (words)", "circuit cols",
         "clock cols", "remark"],
        [(r.n_modules, r.banks_per_module, r.block_words, r.circuit_columns,
          r.clock_columns, r.remark) for r in rows],
    )


def table_5_1() -> None:
    """Regenerate Table 5.1 (cache events and actions)."""
    from repro.cache.state import table_5_1_rows

    rows = table_5_1_rows()
    emit_table(
        "Table 5.1: cache events, states and actions",
        ["event", "local", "remote", "final", "action"],
        [(ev.value, loc.value, rem.value, act.final_local_state.value,
          act.describe()) for ev, loc, rem, act in rows],
    )


def table_5_3() -> None:
    """Regenerate Table 5.3 (legal L1/L2 state combinations)."""
    from repro.cache.state import CacheLineState as S
    from repro.hierarchy.hierarchical import legal_state_combination

    rows = []
    for l1 in S:
        allowed = sorted(
            l2.value for l2 in S if legal_state_combination(l1, l2)
        )
        rows.append([l1.value, " ".join(allowed)])
    emit_table(
        "Table 5.3: legal (L1, L2) cache-line state combinations",
        ["first-level line", "allowed second-level lines"],
        rows,
    )


def table_5_4() -> None:
    """Regenerate Table 5.4 (network-controller priorities)."""
    from repro.hierarchy.controller import EventType

    emit_table(
        "Table 5.4: event priority in a network controller",
        ["priority", "request"],
        [(k.priority, k.name.lower().replace("_", " "))
         for k in sorted(EventType, key=lambda e: e.priority)],
    )


def table_5_5() -> None:
    """Regenerate Table 5.5 (CFM vs DASH read latency)."""
    from repro.hierarchy.latency import table_5_5 as t55

    emit_table(
        "Table 5.5: read latency, CFM vs DASH (cycles)",
        ["read access", "CFM", "DASH"],
        t55(),
    )


def table_5_6() -> None:
    """Regenerate Table 5.6 (CFM vs KSR1 read latency)."""
    from repro.hierarchy.latency import table_5_6 as t56

    emit_table(
        "Table 5.6: read latency, CFM vs KSR1 (cycles)",
        ["read access", "CFM", "KSR1"],
        t56(),
    )


# --------------------------------------------------------------------------
# Figures


def figure_2_1() -> None:
    """Regenerate Fig 2.1 (hot-spot tree saturation), simulated."""
    from repro.memory.hotspot import tree_saturation_sweep

    results = tree_saturation_sweep(n_ports=16, rate=0.5, cycles=4000, seed=0)
    emit_table(
        "Fig 2.1: hot-spot tree saturation (buffered MIN)",
        ["hot fraction", "cold latency", "saturated buffers",
         "blocked injections"],
        [(f"{h:.2f}", f"{rep.mean_latency_cold:.1f}", rep.saturated_buffers,
          rep.blocked_injections) for h, rep in results],
    )


def figure_3_13() -> None:
    """Regenerate Fig 3.13 (efficiency, n=8, m=8)."""
    from repro.analysis.efficiency import fig_3_13_data

    data = fig_3_13_data()
    emit_series("Fig 3.13: efficiency (n=8, m=8, beta=17)",
                "rate", data["rate"],
                {k: v for k, v in data.items() if k != "rate"})


def figure_3_14() -> None:
    """Regenerate Fig 3.14 (partially conflict-free efficiency)."""
    from repro.analysis.efficiency import fig_3_14_data

    data = fig_3_14_data()
    emit_series("Fig 3.14: efficiency (n=64, m=8, beta=17)",
                "rate", data["rate"],
                {k: v for k, v in data.items() if k != "rate"})


def figure_3_15() -> None:
    """Regenerate Fig 3.15 (the 128-processor variant)."""
    from repro.analysis.efficiency import fig_3_15_data

    data = fig_3_15_data()
    emit_series("Fig 3.15: efficiency (n=128, m=16, beta=17)",
                "rate", data["rate"],
                {k: v for k, v in data.items() if k != "rate"})


def figure_4_1() -> None:
    """Regenerate Fig 4.1 (write-interleaving corruption), simulated."""
    from repro.core import AccessKind, CFMConfig, CFMemory
    from repro.core.block import Block

    mem = CFMemory(CFMConfig(n_procs=4))
    mem.issue(0, AccessKind.WRITE, 0, data=Block.of_values([1, 2, 3, 4]),
              version="P0")
    mem.issue(1, AccessKind.WRITE, 0, data=Block.of_values([10, 20, 30, 40]),
              version="P1")
    mem.drain()
    blk = mem.peek_block(0)
    emit_table(
        "Fig 4.1: data inconsistency without access control",
        ["bank", "value", "written by"],
        [(k, w.value, w.version) for k, w in enumerate(blk.words)],
    )


def figure_5_5() -> None:
    """Regenerate Fig 5.5 (atomic multiple lock/unlock), simulated."""
    from repro.cache.protocol import CacheSystem
    from repro.cache.sync_ops import multiple_clear, multiple_test_and_set
    from repro.core.block import Block

    sys_ = CacheSystem(8)
    sys_.mem.poke_block(0, Block.of_values([0, 1, 0, 1, 0, 1, 1, 0]))
    rows = [("initial", "-", "01010110")]

    def bits():
        return "".join(
            "1" if w.value else "0" for w in sys_.mem.peek_block(0).words
        )

    m1 = multiple_test_and_set(sys_, 0, 0, [1, 0, 1, 0, 0, 0, 0, 1])
    sys_.run_until(lambda: m1.done)
    rows.append(("lock 10100001", "granted" if not m1.failed else "denied",
                 bits()))
    m2 = multiple_test_and_set(sys_, 1, 0, [0, 0, 0, 0, 1, 0, 0, 1])
    sys_.run_until(lambda: m2.done)
    rows.append(("lock 00001001", "granted" if not m2.failed else "denied",
                 bits()))
    u = multiple_clear(sys_, 0, 0, [1, 0, 1, 0, 0, 0, 0, 1])
    sys_.run_until(lambda: u.done)
    rows.append(("unlock 10100001", "released", bits()))
    emit_table("Fig 5.5: atomic multiple lock/unlock",
               ["operation", "outcome", "target block"], rows)


def verify() -> int:
    """Check every deterministic artifact against the paper's values.

    Returns the number of mismatches (0 = full reproduction)."""
    checks = []

    from repro.core.config import tradeoff_table

    got = [(r.n_banks, r.word_width, r.memory_latency, r.n_procs)
           for r in tradeoff_table(256, 2)][:6]
    checks.append(("Table 3.3", got == [
        (256, 1, 257, 128), (128, 2, 129, 64), (64, 4, 65, 32),
        (32, 8, 33, 16), (16, 16, 17, 8), (8, 32, 9, 4)]))

    from repro.core.switch import address_path_table

    t31 = address_path_table(4, 2)
    checks.append(("Table 3.1", t31[0] == {0: 0, 2: 1, 4: 2, 6: 3}
                   and t31[2] == {2: 0, 4: 1, 6: 2, 0: 3}))

    from repro.network.synchronous import SynchronousOmegaNetwork

    table = SynchronousOmegaNetwork(8).state_table()
    checks.append(("Table 3.4", table[1] == [[0, 0, 0, 1], [0, 0, 1, 1],
                                             [1, 1, 1, 1]]
                   and table[0] == [[0] * 4] * 3))

    from repro.network.partial import configuration_table

    rows = configuration_table(64)
    checks.append(("Table 3.5", rows[0].remark == "CFM"
                   and rows[-1].remark == "Conventional"
                   and [r.n_modules for r in rows] == [1, 2, 4, 8, 16, 32, 64]))

    from repro.hierarchy.latency import table_5_5 as t55, table_5_6 as t56

    checks.append(("Table 5.5",
                   [c for _n, c, _d in t55()] == [9, 27, 63]
                   and [d for _n, _c, d in t55()] == [29, 100, 130]))
    checks.append(("Table 5.6",
                   [c for _n, c, _k in t56()] == [65, 195]
                   and [k for _n, _c, k in t56()] == [175, 600]))

    from repro.core import AccessKind, CFMConfig, CFMemory
    from repro.core.block import Block

    mem = CFMemory(CFMConfig(n_procs=4))
    mem.issue(0, AccessKind.WRITE, 0, data=Block.of_values([1] * 4),
              version="P0")
    mem.issue(1, AccessKind.WRITE, 0, data=Block.of_values([2] * 4),
              version="P1")
    mem.drain()
    checks.append(("Fig 4.1", mem.peek_block(0).versions
                   == ["P1", "P0", "P0", "P0"]))

    from repro.cache.protocol import CacheSystem
    from repro.cache.sync_ops import multiple_test_and_set

    sys_ = CacheSystem(8)
    sys_.mem.poke_block(0, Block.of_values([0, 1, 0, 1, 0, 1, 1, 0]))
    m1 = multiple_test_and_set(sys_, 0, 0, [1, 0, 1, 0, 0, 0, 0, 1])
    sys_.run_until(lambda: m1.done)
    checks.append(("Fig 5.5", m1.failed is False
                   and m1.new_bits == [1, 1, 1, 1, 0, 1, 1, 1]))

    failures = 0
    for name, ok in checks:
        print(f"{'PASS' if ok else 'FAIL'}  {name}")
        failures += 0 if ok else 1
    print(f"\n{len(checks) - failures}/{len(checks)} deterministic "
          "artifacts match the paper")
    return failures


TABLES: Dict[str, Callable[[], None]] = {
    "3.1": table_3_1,
    "3.3": table_3_3,
    "3.4": table_3_4,
    "3.5": table_3_5,
    "5.1": table_5_1,
    "5.3": table_5_3,
    "5.4": table_5_4,
    "5.5": table_5_5,
    "5.6": table_5_6,
}

FIGURES: Dict[str, Callable[[], None]] = {
    "2.1": figure_2_1,
    "3.13": figure_3_13,
    "3.14": figure_3_14,
    "3.15": figure_3_15,
    "4.1": figure_4_1,
    "5.5": figure_5_5,
}


def _fail_unknown(kind: str, bad_id: str, valid) -> int:
    """Uniform unknown-ID error path: message to stderr, exit status 2."""
    print(f"error: unknown {kind} id {bad_id!r} "
          f"(valid: {' '.join(sorted(valid))})", file=sys.stderr)
    return 2


def _print_hotpath(doc) -> None:
    """One occupancy line per profiled run of a bench document."""
    for run in doc.get("runs", []):
        hp = run.get("hotpath")
        if not hp:
            continue
        for layer, occ in hp.get("occupancy", {}).items():
            fallbacks = sum(
                n for event, n in hp["counters"].get(layer, {}).items()
                if event.startswith("fallback.")
            )
            print(f"  hotpath {run['system']}/{layer}: "
                  f"batched={occ['batched']} skipped={occ['skipped']} "
                  f"ticked={occ['ticked']} "
                  f"({occ['batched_frac']:.0%} off the slow path), "
                  f"fallbacks={fallbacks}")


def _cmd_bench(args) -> int:
    from repro.obs.bench import (
        BENCHMARKS, ENGINE_SYSTEMS, PROFILABLE_SYSTEMS, benchmark_specs,
        run_benchmark, write_document,
    )

    if args.list_benches:
        print("benchmarks:", " ".join(sorted(BENCHMARKS)))
        return 0
    names = args.names or (["quick"] if args.quick else sorted(BENCHMARKS))
    if args.faults and "faults" not in names:
        names = list(names) + ["faults"]
    if args.qos and "qos" not in names:
        names = list(names) + ["qos"]
    unknown = [n for n in names if n not in BENCHMARKS]
    if unknown:
        return _fail_unknown("bench", unknown[0], BENCHMARKS)
    status = 0
    for name in names:
        if args.parallel > 1 or args.stack:
            # --stack routes through the sweep runner even single-process:
            # stacking is a property of the spec plan, not of the pool.
            from repro.fastpath.parallel import sweep

            specs = benchmark_specs(name, quick=args.quick)
            if args.profile:
                for spec in specs:
                    if spec["system"] in PROFILABLE_SYSTEMS:
                        spec["params"]["profile"] = True
            if args.engine is not None:
                from repro.fastpath.engine import engine_available

                # Mirror run_benchmark's pinning rule: only pin systems
                # the engine can actually drive (``stacked`` is cfm-only).
                for spec in specs:
                    if spec["system"] in ENGINE_SYSTEMS and engine_available(
                        args.engine, spec["system"]
                    ):
                        spec["params"]["engine"] = args.engine
            doc = sweep(
                specs, jobs=args.parallel, name=name,
                quick=args.quick or name == "quick", timing=args.timing,
                stack=args.stack,
            )
        else:
            doc = run_benchmark(name, quick=args.quick, timing=args.timing,
                                profile=args.profile, engine=args.engine)
        path = write_document(doc, name, out_dir=args.out)
        print(f"wrote {path}")
        # Partial failure: the document (with every surviving run) is
        # already on disk; name the failed specs on stderr and exit 1.
        for failure in doc.get("failures", []):
            spec = failure.get("spec", {})
            first_line = str(failure.get("error", "")).splitlines()[0]
            print(
                f"error: bench spec failed: {spec.get('system')} "
                f"{spec.get('params')}: {first_line}",
                file=sys.stderr,
            )
            status = 1
        if args.profile:
            _print_hotpath(doc)
    return status


def _parse_shapes(texts):
    """``"8x2"``-style shape args → ``(n_banks, bank_cycle)`` tuples."""
    shapes = []
    for text in texts:
        try:
            b, _, c = text.lower().partition("x")
            shapes.append((int(b), int(c or 1)))
        except ValueError:
            raise SystemExit(
                f"error: bad shape {text!r} (want BANKSxCYCLE, e.g. 8x2)"
            )
    return shapes


def _cmd_serve(args) -> int:
    import asyncio
    import json as _json
    import signal

    from repro.serve.service import SimulationService
    from repro.serve.shard import DEFAULT_WARM_SHAPES

    warm = (_parse_shapes(args.warm) if args.warm
            else list(DEFAULT_WARM_SHAPES))

    async def _shutdown(service) -> None:
        """Drain in-flight work, flush final metrics, close pools cleanly."""
        print("shutting down: draining in-flight requests",
              file=sys.stderr, flush=True)
        await service.drain()
        await service.close_connections()
        print("final metrics: "
              + _json.dumps(service.metrics_snapshot(), sort_keys=True),
              file=sys.stderr, flush=True)
        service.pool.close()

    async def _run() -> int:
        service = SimulationService(
            n_shards=args.shards, max_inflight=args.depth, warm_shapes=warm,
            max_batch=args.max_batch, cache_size=args.cache_size,
        )
        clean = False
        try:
            if args.stdio:
                print(f"serving JSONL on stdio (shards={args.shards}, "
                      f"depth={args.depth}, max_batch={args.max_batch}, "
                      f"cache={args.cache_size})", file=sys.stderr, flush=True)
                served = await service.serve_stdio()
                print(f"served {served} request(s)", file=sys.stderr,
                      flush=True)
                service.pool.close()
                clean = True
                return 0
            stop = asyncio.Event()
            loop = asyncio.get_running_loop()
            for sig in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(sig, stop.set)
                except NotImplementedError:  # non-Unix event loop
                    pass
            server = await service.start(args.host, args.port)
            host, port = server.sockets[0].getsockname()[:2]
            print(f"serving JSONL+HTTP on {host}:{port} "
                  f"(shards={args.shards}, depth={args.depth}, "
                  f"max_batch={args.max_batch}, cache={args.cache_size}, "
                  f"warm={' '.join(f'{b}x{c}' for b, c in warm)})",
                  file=sys.stderr, flush=True)
            await stop.wait()
            # Graceful: stop accepting, drain, flush metrics, close pools.
            server.close()
            await server.wait_closed()
            await _shutdown(service)
            clean = True
            return 0
        finally:
            if not clean:
                service.pool.terminate()

    try:
        return asyncio.run(_run())
    except KeyboardInterrupt:
        print("interrupted; shutting down", file=sys.stderr)
        return 0


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate tables and figures of 'A Conflict-Free "
        "Memory Design for Multiprocessors'.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available tables, figures, benchmarks")
    p_table = sub.add_parser("table", help="regenerate a table")
    p_table.add_argument("id", metavar="id", help="table id (see 'list')")
    p_fig = sub.add_parser("figure", help="regenerate a figure")
    p_fig.add_argument("id", metavar="id", help="figure id (see 'list')")
    sub.add_parser("all", help="regenerate everything")
    sub.add_parser(
        "verify",
        help="check every deterministic artifact against the paper",
    )
    p_bench = sub.add_parser(
        "bench",
        help="run registered benchmarks, write BENCH_<name>.json each",
    )
    p_bench.add_argument(
        "names", nargs="*", metavar="name",
        help="benchmark names (default: 'quick' with --quick, else all)",
    )
    p_bench.add_argument(
        "--quick", action="store_true",
        help="scaled-down runs (CI smoke)",
    )
    p_bench.add_argument(
        "--list", action="store_true", dest="list_benches",
        help="list registered benchmarks and exit",
    )
    p_bench.add_argument(
        "--out", default=".", metavar="DIR",
        help="output directory for BENCH_*.json (default: cwd)",
    )
    p_bench.add_argument(
        "--parallel", type=int, default=1, metavar="N",
        help="fan runs across N worker processes (results identical to "
        "serial; default: 1)",
    )
    p_bench.add_argument(
        "--timing", action="store_true",
        help="add a wall-time/ops-per-sec 'timing' section to each document",
    )
    p_bench.add_argument(
        "--profile", action="store_true",
        help="attach the hot-path profiler to runs that support it and "
        "add a deterministic 'hotpath' section (counters + occupancy)",
    )
    p_bench.add_argument(
        "--faults", action="store_true",
        help="also run the 'faults' chaos benchmark (zero-fault "
        "bit-identity + seeded fault sweeps with typed-error outcomes)",
    )
    p_bench.add_argument(
        "--qos", action="store_true",
        help="also run the 'qos' mixed-criticality benchmark (priority "
        "arbitration vs FIFO baseline; per-tier p50/p99/p99.9 and "
        "deadline-miss SLA accounting)",
    )
    p_bench.add_argument(
        "--engine", choices=["reference", "batch", "vectorized", "stacked"],
        default=None, metavar="ENGINE",
        help="engine strategy for runs that sit behind the engine seam "
        "(cfm/cache/hierarchy): reference, batch, vectorized, or stacked "
        "(cfm-only; other layers keep their defaults); results are "
        "bit-identical across engines",
    )
    p_bench.add_argument(
        "--stack", action="store_true",
        help="execute engine-pinned same-shape cfm runs as stacked "
        "cross-simulation units (combine with --engine stacked; reports "
        "stay bit-identical to unstacked runs)",
    )
    p_serve = sub.add_parser(
        "serve",
        help="run the sharded async simulation service "
        "(JSONL over TCP/stdio + minimal HTTP)",
    )
    p_serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: %(default)s)",
    )
    p_serve.add_argument(
        "--port", type=int, default=7341,
        help="TCP port; 0 picks a free one (default: %(default)s)",
    )
    p_serve.add_argument(
        "--shards", type=int, default=2, metavar="N",
        help="worker shards — one warm process each (default: %(default)s)",
    )
    p_serve.add_argument(
        "--depth", type=int, default=32, metavar="M",
        help="max in-flight requests before the reader applies "
        "backpressure (default: %(default)s)",
    )
    p_serve.add_argument(
        "--max-batch", type=int, default=8, metavar="K",
        help="micro-batch size cap: up to K same-shape requests coalesce "
        "into one worker task; 1 dispatches per-request (default: "
        "%(default)s)",
    )
    p_serve.add_argument(
        "--cache-size", type=int, default=1024, metavar="E",
        help="result-cache entries: completed reports served again "
        "without a worker round-trip; 0 disables caching (default: "
        "%(default)s)",
    )
    p_serve.add_argument(
        "--stdio", action="store_true",
        help="serve JSONL over stdin/stdout instead of TCP (exit on EOF)",
    )
    p_serve.add_argument(
        "--warm", nargs="*", metavar="BxC", default=None,
        help="machine shapes to pre-warm, e.g. 8x2 16x4 "
        "(default: the Table 3.3 working set)",
    )
    args = parser.parse_args(argv)

    if args.command == "list":
        from repro.obs.bench import BENCHMARKS

        print("tables: ", " ".join(sorted(TABLES)))
        print("figures:", " ".join(sorted(FIGURES)))
        print("benchmarks:", " ".join(sorted(BENCHMARKS)))
        return 0
    if args.command == "table":
        if args.id not in TABLES:
            return _fail_unknown("table", args.id, TABLES)
        TABLES[args.id]()
        return 0
    if args.command == "figure":
        if args.id not in FIGURES:
            return _fail_unknown("figure", args.id, FIGURES)
        FIGURES[args.id]()
        return 0
    if args.command == "verify":
        return verify()
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "serve":
        return _cmd_serve(args)
    for tid in sorted(TABLES):
        TABLES[tid]()
    for fid in sorted(FIGURES):
        FIGURES[fid]()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

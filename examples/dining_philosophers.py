#!/usr/bin/env python
"""Dining philosophers three ways: resource binding, Linda, semaphores.

Reproduces the comparison of §6.3.1 (Figs 6.4/6.5): with data binding, a
philosopher acquires *both* chopsticks in one atomic bind — no deadlock is
possible and no "room ticket" workaround is needed.  The Linda version
needs the ticket trick and pays tuple-space search probes; a naive
semaphore version (everyone grabs the left stick first) deadlocks, which
the binding runtime's wait-for-graph detector reports immediately.

Run:  python examples/dining_philosophers.py [n_philosophers]
"""

import sys

from repro.binding.linda import ANY, In, Out, TupleSpace
from repro.binding.manager import Bind, BindingRuntime, DeadlockDetected, Unbind
from repro.binding.region import AccessType, Region
from repro.binding.semaphores import Lock, SemaphoreRuntime, Unlock
from repro.sim.procs import Delay, SchedulerDeadlock

MEALS = 3


def stick_region(i: int, n: int) -> Region:
    """Both of philosopher i's chopsticks as ONE region (atomic multi-bind)."""
    if i < n - 1:
        return Region("chopstick")[i : i + 2]
    return Region("chopstick")[0 : n : n - 1]  # {0, n−1}: the wrap-around


def run_binding(n: int):
    rt = BindingRuntime()
    meals = []

    def philosopher(i: int):
        def gen():
            for _ in range(MEALS):
                d = yield Bind(stick_region(i, n), AccessType.RW)
                meals.append(i)
                yield Delay(2)  # eat
                yield Unbind(d)
                yield Delay(1)  # think

        return gen()

    for i in range(n):
        rt.spawn(philosopher(i), f"phil{i}")
    cycles = rt.run()
    return cycles, len(meals), rt.stats_binds + len(meals)  # bind + unbind ops


def run_linda(n: int):
    ts = TupleSpace()
    meals = []

    def philosopher(i: int):
        def gen():
            for _ in range(MEALS):
                yield In(("room ticket",))
                yield In(("chopstick", i))
                yield In(("chopstick", (i + 1) % n))
                meals.append(i)
                yield Delay(2)
                yield Out(("chopstick", i))
                yield Out(("chopstick", (i + 1) % n))
                yield Out(("room ticket",))
                yield Delay(1)

        return gen()

    def init():
        for i in range(n):
            yield Out(("chopstick", i))
        for _ in range(n - 1):  # the deadlock-avoidance workaround
            yield Out(("room ticket",))

    ts.spawn(init())
    for i in range(n):
        ts.spawn(philosopher(i))
    cycles = ts.run()
    return cycles, len(meals), ts.ops, ts.match_probes


def run_naive_semaphores(n: int):
    """Everyone picks up the left stick first — the classic deadlock."""
    rt = SemaphoreRuntime()

    def philosopher(i: int):
        def gen():
            for _ in range(MEALS):
                yield Lock(f"stick{i}")
                yield Delay(1)  # all grab left, then reach right: boom
                yield Lock(f"stick{(i + 1) % n}")
                yield Delay(2)
                yield Unlock(f"stick{(i + 1) % n}")
                yield Unlock(f"stick{i}")

        return gen()

    for i in range(n):
        rt.spawn(philosopher(i))
    rt.run()


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 5
    print(f"== dining philosophers, n={n}, {MEALS} meals each ==\n")

    cycles, meals, ops = run_binding(n)
    print("resource binding (Fig 6.5):")
    print(f"  all {meals} meals eaten in {cycles} cycles")
    print(f"  {ops} bind/unbind operations, no deadlock-avoidance tricks\n")

    cycles, meals, lops, probes = run_linda(n)
    print("Linda with room tickets (Fig 6.4):")
    print(f"  all {meals} meals eaten in {cycles} cycles")
    print(f"  {lops} tuple-space operations, {probes} match probes "
          "(the associative-search overhead of §6.1.3)\n")

    print("naive semaphores (left stick first):")
    try:
        run_naive_semaphores(n)
        print("  finished (scheduling got lucky)")
    except SchedulerDeadlock:
        print("  DEADLOCKED — every philosopher holds a left stick and")
        print("  waits for the right one; with atomic multi-binds this")
        print("  state is unreachable.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Memory consistency models (§2.2) and weak consistency live (§5.3.1).

Schedules one critical-section program under sequential, processor, weak
and release consistency, then runs a store burst + synchronization on the
slot-accurate cache protocol under weak vs strict write-back discipline —
showing where the relaxed models' speedups actually come from.

Run:  python examples/memory_consistency.py
"""

from repro.cache.consistency import AccessClass as A, compare_consistency_models
from repro.cache.weak_driver import compare_disciplines

PROGRAM = [
    (A.ACQUIRE, 10),
    (A.ORDINARY_LOAD, 10), (A.ORDINARY_LOAD, 10),
    (A.ORDINARY_STORE, 10), (A.ORDINARY_STORE, 10),
    (A.RELEASE, 10),
    (A.ORDINARY_LOAD, 10), (A.ORDINARY_STORE, 10),
]


def main() -> None:
    print("== one critical-section program under the four models ==")
    times = compare_consistency_models(PROGRAM)
    for model, t in times.items():
        print(f"  {model:>10}: {t:>3} cycles "
              f"({times['sequential'] / t:.2f}x vs sequential)")

    print("\n== weak consistency on the live CFM cache protocol ==")
    print("   (N stores to distinct blocks, then a synchronization access)")
    print(f"  {'stores':>6}  {'weak':>6}  {'strict':>7}  {'speedup':>8}")
    for n in (4, 8, 12):
        weak, strict = compare_disciplines(n_stores=n)
        print(f"  {n:>6}  {weak.cycles:>6}  {strict.cycles:>7}  "
              f"{strict.cycles / weak.cycles:>7.2f}x")
    print("\nweak consistency counts a store as performed once the block is")
    print("exclusively owned and modified locally (§5.3.1) — the flushes the")
    print("strict discipline forces are exactly the cycles saved.")


if __name__ == "__main__":
    main()

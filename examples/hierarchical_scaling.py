#!/usr/bin/env python
"""Hierarchical CFM scaling (§5.4): the Tables 5.5/5.6 machines, live.

Builds the two-level CFM configurations the paper compares against DASH
(16 processors) and KSR1 (1024 processors), runs actual read/write
transactions through the hierarchical protocol, and prints the measured
latencies against the published comparison columns — plus the logarithmic
worst-case-miss growth claim of §5.4.3.

Run:  python examples/hierarchical_scaling.py
"""

from repro.hierarchy.hierarchical import HierarchicalCFM
from repro.hierarchy.latency import (
    HierarchicalLatencyModel,
    table_5_5,
    table_5_6,
    worst_case_miss_latency,
)


def run_machine(n_clusters: int, per: int, label: str, comparison) -> None:
    model = HierarchicalLatencyModel(
        beta_local=2 * per + 1, beta_global=2 * n_clusters + 1
    )
    h = HierarchicalCFM(n_clusters, per, model)
    # Drive the three Table 5.5 access classes with real transactions.
    h.read(1, 100)  # warm cluster 0's L2
    local = h.read(0, 100)  # L1 miss, L2 hit
    global_clean = h.read(per, 101)  # cold block from global memory
    h.write(0, 102)  # cluster 0 owns block 102 dirty
    dirty_remote = h.read(per, 102)  # remote cluster reads the dirty block
    h.check_invariants()

    print(f"{label}: {n_clusters} clusters x {per} processors "
          f"(beta_L={model.beta_local}, beta_G={model.beta_global})")
    rows = [
        ("local cluster", local),
        ("global memory", global_clean),
        ("dirty remote", dirty_remote),
    ]
    for (name, measured), (paper_name, cfm, other) in zip(rows, comparison):
        print(f"  {name:>14}: measured {measured:>4} | paper CFM {cfm:>4} "
              f"| comparator {other:>4}")
    print()


def run_slot_accurate() -> None:
    from repro.hierarchy.slot_accurate import SlotAccurateHierarchy

    h = SlotAccurateHierarchy(4, 4)
    h.run_ops([h.load(1, 100)])
    l2_hit = h.load(0, 100)
    h.run_ops([l2_hit])
    clean = h.load(4, 101)
    h.run_ops([clean])
    h.run_ops([h.store(0, 102, {0: 7})])
    dirty = h.load(4, 102)
    h.run_ops([dirty])
    h.check_invariants()
    bl, bg = h.beta_local, h.beta_global
    print("== slot-accurate two-level machine (both levels executing) ==")
    print(f"   beta_L={bl}, beta_G={bg}")
    print(f"   L2 hit: {l2_hit.latency} (= beta_L)")
    print(f"   global clean: {clean.latency} (= 2*beta_L + beta_G, emergent)")
    print(f"   dirty remote: {dirty.latency} "
          f"(serial model {4 * bl + 3 * bg}; the write-back chain overlaps "
          "the fetch retry)\n")


def main() -> None:
    print("== Table 5.5: CFM vs DASH (16 processors, 4 clusters) ==")
    run_machine(4, 4, "CFM", table_5_5())
    run_slot_accurate()

    print("== Table 5.6: CFM vs KSR1 (1024 processors, 32 clusters) ==")
    # Same transactions; only the first two classes appear in Table 5.6.
    rows = table_5_6() + [("dirty remote (not in the paper's table)", 455, 0)]
    run_machine(32, 32, "CFM", rows)

    print("== §5.4.3: worst-case miss latency grows logarithmically ==")
    for n in (16, 64, 256, 1024, 4096):
        levels, cycles = worst_case_miss_latency(n, cluster_size=4,
                                                 beta_per_level=9)
        print(f"  {n:>5} processors: {levels} levels, {cycles:>4} cycles")


if __name__ == "__main__":
    main()

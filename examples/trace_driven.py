#!/usr/bin/env python
"""Trace-driven architecture comparison.

Records one synthetic workload to a trace, then replays the *identical*
access sequence against a conventional interleaved memory and a partially
conflict-free system — the strongest form of common random numbers: any
efficiency difference is purely architectural.

Run:  python examples/trace_driven.py [trace_file]
"""

import sys
import tempfile

from repro.memory.interleaved import (
    ConventionalMemorySimulator,
    PartialCFMemorySimulator,
)
from repro.network.partial import PartialCFSystem
from repro.sim.trace import Trace
from repro.sim.workload import LocalityWorkload


def main() -> None:
    system = PartialCFSystem(n_procs=64, n_modules=8, bank_cycle=2)
    workload = LocalityWorkload(64, 8, rate=0.005, locality=0.7, seed=11)
    trace = Trace.record(workload, cycles=20_000,
                         description="locality-0.7 r=0.005 workload")
    path = sys.argv[1] if len(sys.argv) > 1 else \
        tempfile.NamedTemporaryFile(suffix=".jsonl", delete=False).name
    trace.save(path)
    print(f"recorded {len(trace)} accesses over {trace.header.cycles} "
          f"cycles -> {path}\n")

    replayed = Trace.load(path)
    beta = system.beta
    conv = ConventionalMemorySimulator(
        64, 8, rate=0.0, beta=beta, seed=0
    ).run_trace(replayed)
    part = PartialCFMemorySimulator(
        system, rate=0.0, locality=0.7, seed=0
    ).run_trace(replayed)

    print(f"{'architecture':>28}  {'completed':>9}  {'conflicts':>9}  "
          f"{'efficiency':>10}")
    for name, s in (("conventional (8 modules)", conv),
                    ("partially conflict-free", part)):
        print(f"{name:>28}  {s.completed:>9}  {s.conflicts:>9}  "
              f"{s.efficiency(beta):>10.3f}")
    print("\nidentical trace, identical retry policy — the efficiency gap is")
    print("purely the (module, AT-division) contention structure (§3.2.2).")


if __name__ == "__main__":
    main()

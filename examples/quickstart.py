#!/usr/bin/env python
"""Quickstart: build a conflict-free memory and watch it not conflict.

Builds the paper's canonical small machine (4 processors, 8 banks, bank
cycle 2 — Fig 3.5 / Table 3.1), runs concurrent block accesses from every
processor, and contrasts the measured efficiency with a conventional
interleaved memory under the same load (Fig 3.13's experiment in
miniature).

Run:  python examples/quickstart.py
"""

from repro.analysis.efficiency import conventional_efficiency
from repro.core import AccessKind, CFMConfig, CFMemory
from repro.core.block import Block
from repro.memory.interleaved import ConventionalMemorySimulator


def main() -> None:
    cfg = CFMConfig(n_procs=4, bank_cycle=2, word_width=32)
    print(cfg.describe())
    print(f"block access time beta = {cfg.block_access_time} CPU cycles\n")

    # --- every processor accesses memory at once: zero conflicts ---------
    mem = CFMemory(cfg)
    mem.poke_block(7, Block.of_values([10, 11, 12, 13, 14, 15, 16, 17]))
    accesses = [mem.issue(p, AccessKind.READ, offset=7) for p in range(4)]
    mem.drain()
    print("four simultaneous reads of the same block:")
    for acc in accesses:
        print(
            f"  P{acc.proc}: latency {acc.latency} cycles "
            f"(= beta, no contention), data {acc.result.values}"
        )

    # --- a write and a read to different blocks, mid-period issue --------
    mem.run(3)  # arbitrary clock phase: no alignment stall needed
    w = mem.issue(0, AccessKind.WRITE, 2, data=Block.of_values([9] * 8), version="w")
    r = mem.issue(1, AccessKind.READ, 7)
    mem.drain()
    print(
        f"\nmid-period write latency {w.latency}, concurrent read latency "
        f"{r.latency} — both exactly beta"
    )

    # --- versus a conventional interleaved memory -------------------------
    print("\nefficiency at rising access rates (n=8, m=8, beta=17):")
    print(f"  {'rate':>6}  {'CFM':>6}  {'conventional (measured)':>24}  "
          f"{'conventional (model)':>21}")
    for rate in (0.01, 0.02, 0.04, 0.06):
        sim = ConventionalMemorySimulator(8, 8, rate=rate, beta=17, seed=0)
        measured = sim.measure_efficiency(40_000)
        model = conventional_efficiency(rate, 8, 8, 17)
        print(f"  {rate:>6.2f}  {1.0:>6.2f}  {measured:>24.3f}  {model:>21.3f}")
    print("\nthe CFM holds 100% efficiency at every rate: conflicts cannot occur.")


if __name__ == "__main__":
    main()

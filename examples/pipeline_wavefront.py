#!/usr/bin/env python
"""Process binding: barrier and pipeline synchronization (Figs 6.9/6.10).

Runs the paper's Fig 6.10 program — 32 pipeline stages streaming 1000
array elements, each stage binding its predecessor's PROC at level *i*
before computing element *i* — then a barrier-synchronized SPMD team
(Fig 6.9).  Verifies the wavefront ordering and prints the concurrency
achieved.

Run:  python examples/pipeline_wavefront.py [stages] [items]
"""

import sys

from repro.binding.manager import BindingRuntime
from repro.binding.patterns import barrier_team, make_pipeline
from repro.binding.process import make_proc_array
from repro.sim.procs import Delay


def run_pipeline(n_stages: int, n_items: int) -> None:
    rt = BindingRuntime()
    handles = make_proc_array("p", n_stages)
    schedule = []  # (stage, item, cycle)

    gens = make_pipeline(
        handles, n_items,
        lambda s, i: schedule.append((s, i, rt.sched.cycle)),
    )
    for h, g in zip(handles, gens):
        h.pid = rt.spawn(g, f"stage{h.index}").pid
    total = rt.run()

    # Verify the wavefront: stage s touches item i after stage s−1 did.
    when = {(s, i): c for s, i, c in schedule}
    ok = all(
        when[(s, i)] >= when[(s - 1, i)]
        for s in range(1, n_stages)
        for i in range(n_items)
    )
    # Concurrency: how many distinct stages were active mid-run.
    mid = total // 2
    active = {s for s, _i, c in schedule if abs(c - mid) < n_stages}
    print(f"pipeline (Fig 6.10): {n_stages} stages x {n_items} items")
    print(f"  completed in {total} cycles, dependency order held: {ok}")
    print(f"  sequential would need ~{n_stages * n_items} stage-steps; "
          f"~{len(active)} stages ran concurrently mid-stream\n")


def run_barrier(n_procs: int, rounds: int) -> None:
    rt = BindingRuntime()
    handles = make_proc_array("b", n_procs)
    trace = []

    def body(h, k):
        trace.append((h.index, k, rt.sched.cycle))
        yield Delay(1 + h.index % 3)  # uneven work

    rt.bfork(handles, barrier_team(handles, body, rounds))
    total = rt.run()
    starts = {}
    for _idx, k, c in trace:
        starts.setdefault(k, []).append(c)
    separated = all(
        min(starts[k + 1]) > min(starts[k]) for k in range(rounds - 1)
    )
    print(f"barrier team (Fig 6.9): {n_procs} processes x {rounds} rounds")
    print(f"  completed in {total} cycles, rounds separated: {separated}")


def main() -> None:
    stages = int(sys.argv[1]) if len(sys.argv) > 1 else 32
    items = int(sys.argv[2]) if len(sys.argv) > 2 else 1000
    run_pipeline(stages, items)
    run_barrier(8, 4)


if __name__ == "__main__":
    main()

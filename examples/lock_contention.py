#!/usr/bin/env python
"""Hot-spot-free busy-wait locks on the CFM (§4.2.2, §5.3.2, Fig 5.4).

Runs N processors contending for one lock on two CFM substrates — the
address-tracked swap of Chapter 4 and the cache protocol of Chapter 5 —
and shows the anti-result for a conventional buffered MIN: spin traffic
there creates a hot spot whose tree saturation delays *unrelated* memory
accesses (Fig 2.1), while the CFM's spinners are free.

Run:  python examples/lock_contention.py [n_procs]
"""

import sys

from repro.cache.locks import CacheLockSystem
from repro.memory.hotspot import BufferedMINSimulator
from repro.tracking.locks import SpinLockSystem


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 8

    print(f"== {n} processors contending for one lock ==\n")

    att = SpinLockSystem(n, cs_cycles=10)
    accs = att.run()
    print("Chapter 4: busy-wait on atomic swap (address tracking)")
    print(f"  all {len(accs)} acquisitions, mutual exclusion: "
          f"{att.mutual_exclusion_held}")
    print(f"  waits (cycles): {sorted(a.wait for a in accs)}")
    print(f"  unlock write latencies: {sorted(att.unlock_latencies)} "
          "(spinning readers never delay the holder)\n")

    cache = CacheLockSystem(n, cs_cycles=10)
    accs = cache.run()
    beta = cache.cache.cfg.block_access_time
    ordered = sorted(accs, key=lambda a: a.acquired_slot)
    gaps = [
        b.acquired_slot - a.released_slot for a, b in zip(ordered, ordered[1:])
    ]
    print("Chapter 5: busy-wait on the cache protocol (spin on local copy)")
    print(f"  all {len(accs)} acquisitions, mutual exclusion: "
          f"{cache.mutual_exclusion_held}")
    print(f"  lock-transfer gaps: {gaps} cycles "
          f"(Fig 5.4 predicts ~3 accesses = {3 * beta})")
    print(f"  local spin reads (free): {sum(a.spin_reads for a in accs)}, "
          f"memory ops: {sum(a.memory_ops for a in accs)}\n")

    print("conventional buffered MIN under the same spin traffic (Fig 2.1):")
    base = BufferedMINSimulator(16, seed=0).run(3000, rate=0.4, hot_fraction=0.0)
    spin = BufferedMINSimulator(16, seed=0).run(3000, rate=0.4, hot_fraction=0.3)
    print(f"  cold-traffic latency without hot spot: "
          f"{base.mean_latency_cold:.1f} cycles")
    print(f"  cold-traffic latency with spin hot spot: "
          f"{spin.mean_latency_cold:.1f} cycles "
          f"({spin.saturated_buffers} saturated buffers)")
    print("  on the CFM both numbers are beta: the hot spot cannot form.")


if __name__ == "__main__":
    main()

"""Tests for hierarchical latency models (§5.4.4, Tables 5.5/5.6)."""

import pytest

from repro.hierarchy.latency import (
    DASH_READ_LATENCY,
    KSR1_READ_LATENCY,
    HierarchicalLatencyModel,
    table_5_5,
    table_5_6,
    worst_case_miss_latency,
)


class TestTable55:
    def test_cfm_column_exact(self):
        """Table 5.5 CFM column: 9 / 27 / 63 cycles."""
        rows = table_5_5()
        assert [cfm for _name, cfm, _dash in rows] == [9, 27, 63]

    def test_dash_column_exact(self):
        rows = table_5_5()
        assert [dash for _n, _c, dash in rows] == [29, 100, 130]

    def test_cfm_beats_dash_everywhere(self):
        for _name, cfm, dash in table_5_5():
            assert cfm < dash


class TestTable56:
    def test_cfm_column_exact(self):
        """Table 5.6 CFM column: 65 / 195 cycles."""
        rows = table_5_6()
        assert [cfm for _n, cfm, _k in rows] == [65, 195]

    def test_ksr1_column_exact(self):
        assert [k for _n, _c, k in table_5_6()] == [175, 600]

    def test_cfm_beats_ksr1_everywhere(self):
        for _name, cfm, ksr in table_5_6():
            assert cfm < ksr


class TestModel:
    def test_composition_formulas(self):
        m = HierarchicalLatencyModel(beta_local=9, beta_global=9)
        assert m.local_cluster == 9
        assert m.global_memory == 27  # 2β_L + β_G
        assert m.dirty_remote == 63  # 4β_L + 3β_G

    def test_from_config_validates_line_size(self):
        with pytest.raises(ValueError):
            HierarchicalLatencyModel.from_config(
                n_procs=16, n_clusters=4, line_bytes=64, word_bytes=2
            )

    def test_from_config_requires_even_clusters(self):
        with pytest.raises(ValueError):
            HierarchicalLatencyModel.from_config(
                n_procs=10, n_clusters=4, line_bytes=16, word_bytes=2
            )

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            HierarchicalLatencyModel(0, 9)


class TestLogarithmicScaling:
    def test_levels_grow_logarithmically(self):
        """§5.4.3: worst-case miss latency ∝ log(processors)."""
        l64 = worst_case_miss_latency(64, cluster_size=4, beta_per_level=9)
        l4096 = worst_case_miss_latency(4096, cluster_size=4, beta_per_level=9)
        assert l64[0] == 3
        assert l4096[0] == 6
        assert l4096[1] == 2 * l64[1]  # cycles double when levels double

    def test_single_cluster_is_one_level(self):
        assert worst_case_miss_latency(4, cluster_size=4, beta_per_level=9)[0] == 1

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            worst_case_miss_latency(0, 4, 9)
        with pytest.raises(ValueError):
            worst_case_miss_latency(16, 1, 9)

"""Cache protocol with bank cycle c = 2: twice the banks, directory
coupling only on even banks (processor p ↔ bank 2p)."""

import pytest

from repro.cache.locks import CacheLockSystem
from repro.cache.protocol import CacheSystem
from repro.cache.state import CacheLineState as S
from repro.cache.sync_ops import fetch_and_add
from repro.core.block import Block


class TestTopology:
    def test_coupling_skips_mid_cycle_banks(self):
        sys_ = CacheSystem(4, bank_cycle=2)
        assert sys_.coupled_proc(0) == 0
        assert sys_.coupled_proc(1) is None
        assert sys_.coupled_proc(6) == 3

    def test_block_width_is_c_times_n(self):
        sys_ = CacheSystem(4, bank_cycle=2)
        assert sys_.cfg.n_banks == 8
        assert sys_.cfg.block_access_time == 9


class TestProtocolAtC2:
    def test_clean_miss_latency_is_beta(self):
        sys_ = CacheSystem(4, bank_cycle=2)
        sys_.mem.poke_block(3, Block.of_values([7] * 8))
        op = sys_.load(0, 3)
        sys_.run_ops([op])
        assert op.latency == 9
        assert op.result.values == [7] * 8

    def test_store_and_remote_read(self):
        sys_ = CacheSystem(4, bank_cycle=2)
        w = sys_.store(1, 3, {0: 42})
        sys_.run_ops([w])
        r = sys_.load(0, 3)
        sys_.run_ops([r])
        assert r.result.values[0] == 42
        assert sys_.dirs[1].state_of(3) is S.VALID
        sys_.check_coherence_invariant()

    def test_invalidation_reaches_all_copies(self):
        sys_ = CacheSystem(4, bank_cycle=2)
        loads = [sys_.load(p, 3) for p in (0, 2, 3)]
        sys_.run_ops(loads)
        w = sys_.store(1, 3, {0: 1})
        sys_.run_ops([w])
        for p in (0, 2, 3):
            assert sys_.dirs[p].state_of(3) is S.INVALID
        sys_.check_coherence_invariant()

    def test_write_storm_single_owner(self):
        sys_ = CacheSystem(4, bank_cycle=2)
        ops = [sys_.store(p, 0, {0: p}) for p in range(4)]
        sys_.run_ops(ops)
        assert len(sys_.dirty_owners(0)) == 1
        sys_.check_coherence_invariant()

    def test_fetch_and_add_atomic_at_c2(self):
        sys_ = CacheSystem(4, bank_cycle=2)
        sys_.mem.poke_block(0, Block.zeros(8))
        ops = [fetch_and_add(sys_, p, 0, 1) for p in range(4)]
        sys_.run_until(lambda: all(o.done for o in ops))
        assert sys_.mem.peek_block(0).values[0] == 4
        sys_.check_coherence_invariant()


class TestLocksAtC2:
    @pytest.mark.parametrize("n", [2, 4])
    def test_lock_contention_at_c2(self, n):
        ls = CacheLockSystem(n, bank_cycle=2, cs_cycles=6)
        accs = ls.run()
        assert len(accs) == n
        assert ls.mutual_exclusion_held
        ls.cache.check_coherence_invariant()

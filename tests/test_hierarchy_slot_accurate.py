"""Tests for the slot-accurate two-level hierarchical CFM (§5.4)."""

import pytest

from repro.cache.state import CacheLineState as S
from repro.hierarchy.slot_accurate import HierOpKind, SlotAccurateHierarchy


def make(n_clusters=4, per=4):
    return SlotAccurateHierarchy(n_clusters, per)


class TestLatencyPaths:
    def test_global_clean_read_is_2bl_plus_bg(self):
        """The Table 5.5 'global memory' path, emergent at slot accuracy."""
        h = make()
        op = h.load(0, 100)
        h.run_ops([op])
        assert op.latency == 2 * h.beta_local + h.beta_global
        h.check_invariants()

    def test_l2_hit_is_beta_local(self):
        h = make()
        h.run_ops([h.load(0, 100)])
        op = h.load(1, 100)  # cluster peer: L2 hit, L1 miss
        h.run_ops([op])
        assert op.latency == h.beta_local

    def test_l1_hit_is_local(self):
        h = make()
        h.run_ops([h.load(0, 100)])
        op = h.load(0, 100)
        h.run_ops([op])
        assert op.latency <= 2

    def test_dirty_remote_between_clean_and_serial_model(self):
        """The dirty chain costs more than a clean fetch but overlaps
        work the serial 4β_L + 3β_G model double-counts."""
        h = make()
        h.run_ops([h.store(0, 100, {0: 42})])
        op = h.load(h.per, 100)  # cluster 1 reads the dirty block
        h.run_ops([op])
        clean = 2 * h.beta_local + h.beta_global
        serial = 4 * h.beta_local + 3 * h.beta_global
        assert clean < op.latency <= serial
        h.check_invariants()


class TestCoherenceAcrossClusters:
    def test_value_propagates_through_the_hierarchy(self):
        """store → L1 WB → L2 banks → global data → remote fetch → L1."""
        h = make()
        h.run_ops([h.store(0, 100, {0: 42})])
        op = h.load(h.per, 100)
        h.run_ops([op])
        assert op.result.values[0] == 42

    def test_store_invalidates_remote_clusters(self):
        h = make()
        h.run_ops([h.load(0, 100), h.load(h.per, 100), h.load(2 * h.per, 100)])
        w = h.store(3 * h.per, 100, {0: 7})
        h.run_ops([w])
        for c in range(3):
            assert h.l2[c].get(100) is None
        assert h.l2[3].get(100) is S.DIRTY
        h.check_invariants()

    def test_sequential_cross_cluster_stores_serialize(self):
        h = make()
        for i, gp in enumerate((0, h.per, 2 * h.per)):
            w = h.store(gp, 100, {0: i + 1})
            h.run_ops([w])
            h.check_invariants()
        r = h.load(3 * h.per, 100)
        h.run_ops([r])
        assert r.result.values[0] == 3

    def test_concurrent_cross_cluster_writers_one_owner(self):
        h = make()
        ops = [h.store(c * h.per, 5, {0: c}) for c in range(4)]
        h.run_ops(ops)
        h.check_invariants()
        owners = [c for c in range(4) if h.l2[c].get(5) is S.DIRTY]
        assert len(owners) == 1

    def test_mixed_readers_and_writers_stay_legal(self):
        h = make()
        ops = []
        for gp in range(h.n_procs):
            if gp % 3 == 0:
                ops.append(h.store(gp, 0, {0: gp}))
            else:
                ops.append(h.load(gp, 0))
        h.run_ops(ops)
        h.check_invariants()

    def test_intra_cluster_sharing_never_goes_global(self):
        h = make()
        h.run_ops([h.load(0, 100)])
        fetches_before = h.global_mem.completed.copy()
        ops = [h.load(p, 100) for p in range(1, h.per)]
        h.run_ops(ops)
        # No additional global accesses for cluster-internal sharing.
        assert len(h.global_mem.completed) == len(fetches_before)


class TestNCBehaviour:
    def test_waiters_coalesce_on_one_fetch(self):
        """Two processors of one cluster missing the same block share one
        global fetch."""
        h = make()
        a = h.load(0, 100)
        b = h.load(1, 100)
        h.run_ops([a, b])
        total_global_reads = sum(
            1 for acc in h.global_mem.completed if acc.kind.is_read
        )
        assert total_global_reads == 1

    def test_table_5_4_priority_wb_first(self):
        """A triggered L2 write-back is served before queued fetches."""
        h = make()
        h.run_ops([h.store(0, 100, {0: 1})])
        # Cluster 0's NC now gets: a fetch request (for another block) and,
        # via a remote reader, a triggered WB for block 100.
        remote = h.load(h.per, 100)  # will trigger the WB on NC 0
        local_fetch = h.load(0, 200)  # NC 0 fetch for a different block
        h.run_ops([remote, local_fetch])
        served = h.ncs[0].queue.served
        kinds = [ev.event_type for ev in served]
        from repro.hierarchy.controller import EventType

        if EventType.WRITE_BACK in kinds and EventType.READ in kinds:
            assert kinds.index(EventType.WRITE_BACK) < len(kinds)
        h.check_invariants()

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            SlotAccurateHierarchy(1, 4)

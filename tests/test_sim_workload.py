"""Tests for synthetic workload generators."""

import pytest

from repro.sim.workload import (
    HotSpotWorkload,
    LocalityWorkload,
    UniformWorkload,
    bernoulli_issue_counts,
)


class TestUniformWorkload:
    def test_reproducible(self):
        a = UniformWorkload(4, 8, 0.3, seed=5).generate(100)
        b = UniformWorkload(4, 8, 0.3, seed=5).generate(100)
        assert a == b

    def test_rate_respected(self):
        evs = UniformWorkload(16, 8, 0.25, seed=1).generate(2000)
        rate = len(evs) / (2000 * 16)
        assert rate == pytest.approx(0.25, abs=0.02)

    def test_fields_in_range(self):
        for ev in UniformWorkload(4, 8, 0.5, seed=2, offsets=32).generate(200):
            assert 0 <= ev.proc < 4
            assert 0 <= ev.module < 8
            assert 0 <= ev.offset < 32
            assert 0 <= ev.cycle < 200

    def test_zero_rate_is_silent(self):
        assert UniformWorkload(4, 8, 0.0).generate(100) == []

    def test_modules_roughly_uniform(self):
        evs = UniformWorkload(8, 4, 0.5, seed=3).generate(4000)
        counts = [0] * 4
        for ev in evs:
            counts[ev.module] += 1
        for c in counts:
            assert c == pytest.approx(len(evs) / 4, rel=0.15)

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            UniformWorkload(0, 8, 0.1)
        with pytest.raises(ValueError):
            UniformWorkload(4, 8, 1.5)


class TestHotSpotWorkload:
    def test_hot_module_gets_excess_traffic(self):
        w = HotSpotWorkload(16, 16, 0.5, hot_fraction=0.5, hot_module=3, seed=4)
        evs = w.generate(2000)
        hot = sum(1 for e in evs if e.module == 3)
        # hot fraction 0.5 + uniform share 0.5/16 ≈ 0.53
        assert hot / len(evs) == pytest.approx(0.53, abs=0.05)

    def test_zero_hot_fraction_is_uniform(self):
        w = HotSpotWorkload(8, 8, 0.5, hot_fraction=0.0, seed=5)
        evs = w.generate(2000)
        hot = sum(1 for e in evs if e.module == 0)
        assert hot / len(evs) == pytest.approx(1 / 8, abs=0.04)

    def test_bad_hot_module_rejected(self):
        with pytest.raises(ValueError):
            HotSpotWorkload(4, 4, 0.1, hot_module=4)


class TestLocalityWorkload:
    def test_locality_fraction(self):
        w = LocalityWorkload(32, 8, 0.5, locality=0.8, seed=6)
        evs = w.generate(2000)
        local = sum(1 for e in evs if e.module == w.home_module(e.proc))
        assert local / len(evs) == pytest.approx(0.8, abs=0.03)

    def test_remote_never_targets_home(self):
        w = LocalityWorkload(8, 4, 0.5, locality=0.0, seed=7)
        for ev in w.generate(500):
            assert ev.module != w.home_module(ev.proc)

    def test_full_locality(self):
        w = LocalityWorkload(8, 4, 0.5, locality=1.0, seed=8)
        for ev in w.generate(300):
            assert ev.module == w.home_module(ev.proc)

    def test_single_module_always_local(self):
        w = LocalityWorkload(4, 1, 0.5, locality=0.5, seed=9)
        for ev in w.generate(200):
            assert ev.module == 0


def test_bernoulli_issue_counts_shape_and_rate():
    counts = bernoulli_issue_counts(8, 1000, 0.25, seed=0)
    assert counts.shape == (1000,)
    assert counts.mean() == pytest.approx(2.0, abs=0.3)

"""Property-based tests (hypothesis) for the DESIGN.md invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.binding.region import AccessType, DimRange, Region, regions_conflict
from repro.core.atspace import ATSpace, verify_busy_intervals
from repro.core.block import Block
from repro.core.cfm import AccessKind, AccessState, CFMemory
from repro.core.config import CFMConfig
from repro.network.omega import OmegaNetwork
from repro.network.synchronous import SynchronousOmegaNetwork
from repro.tracking.access_control import AddressTrackingController, PriorityMode
from repro.tracking.atomic import CFMDriver, OpStatus, ReadOperation, WriteOperation


# -- strategy helpers --------------------------------------------------------

banks_and_cycle = st.sampled_from(
    [(4, 1), (8, 1), (16, 1), (8, 2), (12, 3), (16, 4)]
)
pow2 = st.sampled_from([2, 4, 8, 16, 32])


# -- Invariant 1: AT-space partitions ----------------------------------------


@given(banks_and_cycle)
def test_atspace_partitions_mutually_exclusive(bc):
    banks, cycle = bc
    assert ATSpace(banks, cycle).partitions_are_exclusive()


@given(banks_and_cycle, st.integers(min_value=0, max_value=200))
def test_atspace_slot_mapping_injective(bc, slot):
    banks, cycle = bc
    space = ATSpace(banks, cycle)
    mapping = space.slot_mapping(slot)
    assert len(set(mapping.values())) == len(mapping)


@given(banks_and_cycle)
def test_atspace_busy_intervals_never_overlap(bc):
    banks, cycle = bc
    assert verify_busy_intervals(ATSpace(banks, cycle), slots=3 * banks)


# -- Invariant 2: block accesses ----------------------------------------------


@given(
    banks_and_cycle,
    st.integers(min_value=0, max_value=30),
    st.integers(min_value=0, max_value=63),
)
def test_block_access_beta_and_full_coverage(bc, start_delay, offset):
    banks, cycle = bc
    cfg = CFMConfig(n_procs=banks // cycle, bank_cycle=cycle)
    mem = CFMemory(cfg)
    mem.run(start_delay)
    acc = mem.issue(0, AccessKind.READ, offset)
    mem.drain()
    assert acc.state is AccessState.COMPLETED
    assert acc.latency == cfg.block_access_time
    assert sorted(acc.result_words.keys()) == list(range(banks))


@given(
    st.sampled_from([4, 8, 16]),
    st.lists(st.integers(min_value=0, max_value=15), min_size=1, max_size=8),
)
def test_concurrent_block_accesses_conflict_free(n, stagger_pattern):
    """No two accesses ever address the same bank in a slot, whatever the
    issue phases — the engine's ConflictError never fires."""
    cfg = CFMConfig(n_procs=n)
    mem = CFMemory(cfg, check_conflicts=True)
    for p, delay in enumerate(stagger_pattern[:n]):
        mem.run(delay % 3)
        mem.issue(p, AccessKind.READ, p)
    mem.drain()
    assert len(mem.completed) == min(len(stagger_pattern), n)


# -- Invariant 3: synchronous omega networks ----------------------------------


@given(pow2, st.integers(min_value=0, max_value=100))
def test_synchronous_omega_realizes_shift(n, slot):
    net = SynchronousOmegaNetwork(n)
    assert net.permutation(slot) == [(slot + i) % n for i in range(n)]
    # Realizable conflict-free (raises otherwise).
    net.switch_states(slot)


@given(pow2)
def test_omega_uniform_shifts_route(n):
    net = OmegaNetwork(n)
    for t in range(n):
        assert net.is_conflict_free([(i, (i + t) % n) for i in range(n)])


# -- Invariant 4: address tracking consistency ---------------------------------


@settings(max_examples=40, deadline=None)
@given(
    st.integers(min_value=0, max_value=7),  # writer proc
    st.integers(min_value=0, max_value=7),  # reader proc
    st.integers(min_value=0, max_value=12),  # stagger
)
def test_reads_single_version_under_any_write_phase(wp, rp, stagger):
    if wp == rp:
        rp = (rp + 1) % 8
    cfg = CFMConfig(n_procs=8)
    ctl = AddressTrackingController(8, PriorityMode.LATEST_WINS)
    mem = CFMemory(cfg, controller=ctl)
    d = CFMDriver(mem)
    mem.poke_block(0, Block.of_values([0] * 8, "old"))
    w = WriteOperation(d, wp, 0, [1] * 8, version="new").start()
    d.run(stagger)
    r = ReadOperation(d, rp, 0).start()
    d.run_until(lambda: w.done and r.done)
    assert r.result is not None
    assert r.result.is_single_version()


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=7),
            st.integers(min_value=0, max_value=6),
        ),
        min_size=2,
        max_size=4,
        unique_by=lambda t: t[0],
    )
)
def test_competing_writes_leave_single_version(writers):
    """However many writers at whatever phases, the final block is whole
    and belongs to a completed write."""
    cfg = CFMConfig(n_procs=8)
    ctl = AddressTrackingController(8, PriorityMode.LATEST_WINS)
    mem = CFMemory(cfg, controller=ctl)
    d = CFMDriver(mem)
    ops = []
    for proc, delay in writers:
        d.run(delay)
        ops.append(
            WriteOperation(d, proc, 0, [proc] * 8, version=f"v{proc}").start()
        )
    d.run_until(lambda: all(o.done for o in ops))
    blk = mem.peek_block(0)
    assert blk.is_single_version()
    done_versions = {o.version for o in ops if o.status is OpStatus.DONE}
    assert blk.versions[0] in done_versions


# -- Invariant 5: cache protocol single-dirty ----------------------------------


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=5),  # proc
            st.booleans(),  # write?
            st.integers(min_value=0, max_value=2),  # offset
        ),
        min_size=2,
        max_size=10,
    )
)
def test_cache_protocol_single_dirty_owner(ops_spec):
    from repro.cache.protocol import CacheSystem

    sys_ = CacheSystem(6)
    ops = []
    for proc, is_write, offset in ops_spec:
        if any(
            o.proc == proc and not o.done for o in ops
        ):  # one op per proc at a time in this random driver
            sys_.run_ops([o for o in ops if o.proc == proc])
        if is_write:
            ops.append(sys_.store(proc, offset, {0: proc}))
        else:
            ops.append(sys_.load(proc, offset))
    sys_.run_ops(ops)
    sys_.check_coherence_invariant()


# -- Invariant 6/7: binding conflicts -------------------------------------------


region_strategy = st.builds(
    lambda s, w, step: Region("x")[slice(s, s + w, step)],
    st.integers(min_value=0, max_value=20),
    st.integers(min_value=1, max_value=20),
    st.integers(min_value=1, max_value=4),
)


@given(region_strategy, region_strategy)
def test_region_overlap_matches_enumeration(a, b):
    """The gcd/CRT intersection is exactly set intersection."""
    ra, rb = a.selectors[0], b.selectors[0]
    explicit = bool(
        set(range(ra.start, ra.stop, ra.step))
        & set(range(rb.start, rb.stop, rb.step))
    )
    assert ra.intersects(rb) == explicit
    assert a.overlaps(b) == explicit


@given(region_strategy, region_strategy)
def test_conflict_symmetry(a, b):
    for acc_a in (AccessType.RO, AccessType.RW):
        for acc_b in (AccessType.RO, AccessType.RW):
            assert regions_conflict(a, acc_a, b, acc_b) == regions_conflict(
                b, acc_b, a, acc_a
            )


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=10),
            st.integers(min_value=1, max_value=8),
            st.sampled_from([AccessType.RO, AccessType.RW]),
            st.integers(min_value=1, max_value=4),
        ),
        min_size=1,
        max_size=5,
    )
)
@settings(max_examples=30, deadline=None)
def test_granted_bindings_never_conflict(specs):
    """Runtime invariant 6: the active binding list is conflict-free at
    every instant."""
    from repro.binding.manager import Bind, BindingRuntime, Unbind
    from repro.sim.procs import Delay

    rt = BindingRuntime(detect_deadlock=False)
    snapshots = []

    def user(start, width, access, hold):
        def gen():
            d = yield Bind(Region("x")[start : start + width], access)
            snapshots.append(
                [
                    (ab.desc.target, ab.desc.access, ab.desc.owner_pid)
                    for ab in rt.active.values()
                ]
            )
            yield Delay(hold)
            yield Unbind(d)

        return gen()

    for start, width, access, hold in specs:
        rt.spawn(user(start, width, access, hold))
    try:
        rt.run(max_cycles=10_000)
    except Exception:
        pass  # deadlocks possible with random programs; invariant still holds
    for snap in snapshots:
        for i, (ta, aa, pa) in enumerate(snap):
            for tb, ab_, pb in snap[i + 1 :]:
                if pa != pb:
                    assert not regions_conflict(ta, aa, tb, ab_)


# -- Closed-form model sanity ----------------------------------------------------


@given(
    st.floats(min_value=0.0, max_value=0.05),
    st.floats(min_value=0.0, max_value=1.0),
)
def test_partial_efficiency_bounded(rate, lam):
    from repro.analysis.efficiency import partial_cf_efficiency

    e = partial_cf_efficiency(rate, lam, 8, 17)
    assert 0.0 <= e <= 1.0
    assert not math.isnan(e)


# -- Slot-accurate hierarchy: Table 5.3 under random storms ---------------------


@settings(max_examples=15, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=15),  # global proc (4x4)
            st.booleans(),  # write?
            st.integers(min_value=0, max_value=2),  # offset
        ),
        min_size=2,
        max_size=12,
    )
)
def test_hierarchy_invariants_under_random_storm(ops_spec):
    from repro.hierarchy.slot_accurate import SlotAccurateHierarchy

    h = SlotAccurateHierarchy(4, 4)
    ops = []
    for gproc, is_write, offset in ops_spec:
        pending = [o for o in ops if o.gproc == gproc and not o.done]
        if pending:
            h.run_ops(pending)
        if is_write:
            ops.append(h.store(gproc, offset, {0: gproc}))
        else:
            ops.append(h.load(gproc, offset))
    h.run_ops(ops)
    h.check_invariants()

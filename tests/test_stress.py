"""Seeded randomized stress across the three protocol layers.

Complements the hypothesis property tests with longer mixed-traffic storms
at a fixed seed: the cache protocol's single-dirty invariant, the
hierarchy's Table 5.3 invariant, and the ATT layer's single-version
guarantee must survive arbitrary interleavings of the full op vocabulary.
"""

import random

import pytest

from repro.cache.protocol import CacheSystem
from repro.core.block import Block
from repro.core.cfm import CFMemory
from repro.core.config import CFMConfig
from repro.hierarchy.slot_accurate import SlotAccurateHierarchy
from repro.tracking.access_control import AddressTrackingController, PriorityMode
from repro.tracking.atomic import (
    CFMDriver,
    ReadOperation,
    SwapOperation,
    WriteOperation,
)


@pytest.mark.parametrize("seed", [11, 22, 33])
def test_cache_protocol_storms(seed):
    rng = random.Random(seed)
    for _trial in range(15):
        n = rng.choice([4, 6, 8])
        sys_ = CacheSystem(n)
        ops = []
        for _ in range(rng.randint(4, 20)):
            p = rng.randrange(n)
            if any(o.proc == p and not o.done for o in ops):
                sys_.run_ops([o for o in ops if o.proc == p])
            off = rng.randrange(3)
            if rng.random() < 0.5:
                ops.append(sys_.store(p, off, {0: p}))
            else:
                ops.append(sys_.load(p, off))
        sys_.run_ops(ops)
        sys_.check_coherence_invariant()


@pytest.mark.parametrize("seed", [44, 55])
def test_hierarchy_storms(seed):
    rng = random.Random(seed)
    for _trial in range(8):
        h = SlotAccurateHierarchy(rng.choice([2, 3, 4]), rng.choice([2, 4]))
        ops = []
        for _ in range(rng.randint(4, 16)):
            gp = rng.randrange(h.n_procs)
            pending = [o for o in ops if o.gproc == gp and not o.done]
            if pending:
                h.run_ops(pending)
            off = rng.randrange(3)
            if rng.random() < 0.4:
                ops.append(h.store(gp, off, {0: gp}))
            else:
                ops.append(h.load(gp, off))
        h.run_ops(ops)
        h.check_invariants()


@pytest.mark.parametrize("seed", [66, 77])
def test_att_atomic_storms(seed):
    rng = random.Random(seed)
    for trial in range(12):
        cfg = CFMConfig(n_procs=8)
        ctl = AddressTrackingController(8, PriorityMode.FIRST_WINS)
        mem = CFMemory(cfg, controller=ctl)
        d = CFMDriver(mem)
        mem.poke_block(0, Block.of_values([0] * 8, "init"))
        ops = []
        used = set()
        for _ in range(rng.randint(2, 5)):
            p = rng.choice([x for x in range(8) if x not in used])
            used.add(p)
            d.run(rng.randrange(4))
            kind = rng.random()
            if kind < 0.5:
                ops.append(
                    SwapOperation(d, p, 0, [p + 1] * 8, version=f"s{p}").start()
                )
            elif kind < 0.8:
                ops.append(
                    WriteOperation(d, p, 0, [100 + p] * 8,
                                   version=f"w{p}").start()
                )
            else:
                ops.append(ReadOperation(d, p, 0).start())
        d.run_until(lambda: all(o.done for o in ops), max_slots=50_000)
        blk = mem.peek_block(0)
        assert blk.is_single_version(), (trial, blk.versions)
        for o in ops:
            if isinstance(o, ReadOperation) and o.result is not None:
                assert o.result.is_single_version()

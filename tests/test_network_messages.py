"""Tests for message headers and overhead accounting (Figs 3.9/3.10)."""

import pytest

from repro.network.messages import (
    address_space_bits,
    circuit_switching_header,
    header_overhead_ratio,
    header_savings,
    partially_synchronous_header,
    synchronous_header,
)


class TestHeaders:
    def test_circuit_switching_carries_module_and_bank(self):
        h = circuit_switching_header(n_modules=8, offset_bits=20,
                                     n_banks_per_module=4)
        assert h.fields == {"module": 3, "offset": 20, "bank": 2}
        assert h.total_bits == 25

    def test_synchronous_carries_only_offset(self):
        """Fig 3.9b: the bank is selected by the system clock."""
        h = synchronous_header(offset_bits=20)
        assert h.fields == {"offset": 20}
        assert "module" not in h
        assert "bank" not in h

    def test_partially_synchronous_drops_bank(self):
        """Fig 3.10: module + offset; the bank never travels."""
        h = partially_synchronous_header(n_modules=4, offset_bits=16)
        assert h.fields == {"module": 2, "offset": 16}

    def test_single_module_needs_no_module_field(self):
        h = partially_synchronous_header(n_modules=1, offset_bits=16)
        assert h.fields == {"offset": 16}

    def test_fig_3_10_configurations(self):
        """4 two-bank modules vs 2 four-bank modules of Fig 3.10."""
        a = partially_synchronous_header(4, 10)
        b = partially_synchronous_header(2, 10)
        assert a.fields["module"] == 2
        assert b.fields["module"] == 1


class TestOverhead:
    def test_savings_positive_for_any_banked_system(self):
        assert header_savings(n_modules=8, offset_bits=20,
                              n_banks_per_module=8) > 0

    def test_overhead_ratio(self):
        h = synchronous_header(16)
        assert header_overhead_ratio(h, payload_bits=240) == pytest.approx(
            16 / 256
        )

    def test_overhead_ratio_bounds(self):
        h = synchronous_header(16)
        with pytest.raises(ValueError):
            header_overhead_ratio(h, -1)

    def test_synchronous_always_smaller_than_circuit(self):
        for m in (2, 4, 16):
            for bpm in (2, 8):
                circ = circuit_switching_header(m * bpm, 24, 1)
                sync = synchronous_header(24)
                assert sync.total_bits < circ.total_bits


class TestLargeAddressSpaces:
    def test_beyond_4gb_handled_by_offset_width(self):
        """§3.4.3: a >4 GB shared space just means a wider offset field."""
        bits_4gb = address_space_bits(4 * 2**30, block_bytes=32)
        bits_64gb = address_space_bits(64 * 2**30, block_bytes=32)
        assert bits_64gb == bits_4gb + 4

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            address_space_bits(0, 32)
        with pytest.raises(ValueError):
            address_space_bits(100, 32)

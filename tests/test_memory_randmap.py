"""Tests for random address mapping (§2.1.2, the Monarch approach)."""

import pytest

from repro.memory.randmap import (
    ConflictCount,
    MappingPolicy,
    map_address,
    module_conflicts,
    stride_sweep,
    strided_addresses,
)


class TestMapping:
    def test_interleaved_is_mod(self):
        assert map_address(17, 16, MappingPolicy.INTERLEAVED) == 1

    def test_random_is_deterministic(self):
        a = map_address(17, 16, MappingPolicy.RANDOM, salt=3)
        b = map_address(17, 16, MappingPolicy.RANDOM, salt=3)
        assert a == b
        assert 0 <= a < 16

    def test_salt_changes_random_mapping(self):
        maps = {
            map_address(17, 1024, MappingPolicy.RANDOM, salt=s)
            for s in range(8)
        }
        assert len(maps) > 1

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            map_address(0, 0, MappingPolicy.RANDOM)
        with pytest.raises(ValueError):
            map_address(-1, 4, MappingPolicy.RANDOM)


class TestStridedConflicts:
    def test_unit_stride_perfect_under_interleaving(self):
        addrs = strided_addresses(16, 1)
        c = module_conflicts(addrs, 16, MappingPolicy.INTERLEAVED)
        assert c.conflicts == 0
        assert c.spread == 1.0

    def test_module_stride_catastrophic_under_interleaving(self):
        """Stride = m: every reference lands on one module."""
        addrs = strided_addresses(16, 16)
        c = module_conflicts(addrs, 16, MappingPolicy.INTERLEAVED)
        assert c.max_per_module == 16
        assert c.conflicts == 15

    def test_random_mapping_spreads_bad_strides(self):
        """The Monarch argument: random mapping rescues the worst case."""
        addrs = strided_addresses(16, 16)
        rand = module_conflicts(addrs, 16, MappingPolicy.RANDOM, salt=7)
        inter = module_conflicts(addrs, 16, MappingPolicy.INTERLEAVED)
        assert rand.conflicts < inter.conflicts
        assert rand.max_per_module < inter.max_per_module

    def test_random_mapping_hurts_the_perfect_case(self):
        """...but degrades the unit-stride case interleaving nails —
        'improve the average access performance', not all of it."""
        addrs = strided_addresses(16, 1)
        rand = module_conflicts(addrs, 16, MappingPolicy.RANDOM, salt=7)
        assert rand.conflicts > 0  # birthday collisions

    def test_sweep_structure(self):
        sweep = stride_sweep(n_modules=16, n_refs=16)
        assert set(sweep[16]) == {"interleaved", "random"}
        assert sweep[16]["interleaved"].conflicts == 15
        # Random mapping's conflicts are stride-insensitive.
        rand_conflicts = [sweep[s]["random"].conflicts for s in sweep]
        assert max(rand_conflicts) - min(rand_conflicts) <= 6

    def test_empty_batch(self):
        assert module_conflicts([], 4, MappingPolicy.RANDOM).spread == 1.0

    def test_invalid_stride(self):
        with pytest.raises(ValueError):
            strided_addresses(4, 0)

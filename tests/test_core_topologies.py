"""Tests for multi-cluster CFM topologies (§3.3)."""

import pytest

from repro.core.cfm import AccessKind
from repro.core.topologies import (
    build_uniform_system,
    fully_connected_topology,
    hypercube_topology,
    mesh_topology,
    ring_topology,
)


class TestBuilders:
    def test_ring(self):
        sys_ = build_uniform_system(ring_topology(6))
        assert sys_.hops(0, 3) == 3
        assert sys_.diameter() == 3

    def test_mesh(self):
        sys_ = build_uniform_system(mesh_topology(3, 3))
        assert sys_.hops(0, 8) == 4  # corner to corner
        assert sys_.diameter() == 4

    def test_hypercube(self):
        sys_ = build_uniform_system(hypercube_topology(3))
        assert sys_.diameter() == 3
        assert len(sys_.clusters) == 8

    def test_fully_connected(self):
        sys_ = build_uniform_system(fully_connected_topology(5))
        assert sys_.diameter() == 1

    def test_invalid_builders(self):
        with pytest.raises(ValueError):
            ring_topology(1)
        with pytest.raises(ValueError):
            mesh_topology(0, 3)
        with pytest.raises(ValueError):
            hypercube_topology(0)


class TestRoutingLatency:
    def test_latency_scales_with_hops(self):
        sys_ = build_uniform_system(ring_topology(8), link_latency=4)
        near = sys_.remote_access(0, 0, 1, AccessKind.READ, 0)
        far = sys_.remote_access(0, 1, 4, AccessKind.READ, 0)
        sys_.run_until_done(2)
        assert far.latency > near.latency
        # 1 hop vs 4 hops: 2·4 extra cycles per extra hop each way.
        assert far.latency - near.latency >= 2 * 3 * 4 - 4

    def test_topology_comparison_orders_by_diameter(self):
        """Lower-diameter topologies give lower worst-case remote latency."""
        def worst(graph):
            sys_ = build_uniform_system(graph, link_latency=4)
            n = len(sys_.clusters)
            far = max(range(1, n), key=lambda d: sys_.hops(0, d))
            req = sys_.remote_access(0, 0, far, AccessKind.READ, 0)
            sys_.run_until_done(1)
            return req.latency

        ring = worst(ring_topology(8))
        cube = worst(hypercube_topology(3))
        full = worst(fully_connected_topology(8))
        assert full < cube < ring

    def test_free_slot_service_still_conflict_free(self):
        sys_ = build_uniform_system(mesh_topology(2, 2))
        local = sys_.local_access(3, 0, AccessKind.READ, 0)
        sys_.remote_access(0, 0, 3, AccessKind.READ, 0)
        sys_.run_until_done(1)
        assert local.latency == 4  # exactly β despite the remote service

    def test_mismatched_sizes_rejected(self):
        from repro.core.config import CFMConfig
        from repro.core.topologies import TopologyClusterSystem

        cfgs = [CFMConfig(n_procs=4) for _ in range(3)]
        with pytest.raises(ValueError):
            TopologyClusterSystem(cfgs, [3, 3, 3], ring_topology(4))

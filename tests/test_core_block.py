"""Tests for words, blocks and bitmaps."""

import pytest

from repro.core.block import Block, Word, pack_bitmap, unpack_bitmap


class TestBlock:
    def test_of_values_carries_version(self):
        b = Block.of_values([1, 2, 3], version="w1")
        assert b.values == [1, 2, 3]
        assert b.versions == ["w1", "w1", "w1"]
        assert b.is_single_version()

    def test_mixed_versions_detected(self):
        b = Block.of_values([1, 2], version="a").with_word(1, Word(9, "b"))
        assert not b.is_single_version()
        assert b.values == [1, 9]

    def test_zeros(self):
        b = Block.zeros(4)
        assert b.values == [0, 0, 0, 0]
        assert b.is_single_version()

    def test_with_word_does_not_mutate(self):
        b = Block.of_values([1, 2])
        b2 = b.with_word(0, Word(5))
        assert b.values == [1, 2]
        assert b2.values == [5, 2]

    def test_indexing_and_len(self):
        b = Block.of_values([7, 8, 9])
        assert len(b) == 3
        assert b[2].value == 9


class TestBitmaps:
    def test_roundtrip(self):
        bits = [0, 1, 0, 1, 0, 1, 1, 0]  # Fig 5.5's initial pattern
        v = pack_bitmap(bits)
        assert v == 0b01010110
        assert unpack_bitmap(v, 8) == bits

    def test_fig_5_5_lock_result(self):
        target = pack_bitmap([0, 1, 0, 1, 0, 1, 1, 0])
        request = pack_bitmap([1, 0, 1, 0, 0, 0, 0, 1])
        assert target & request == 0  # no common 1 → lock succeeds
        assert target | request == pack_bitmap([1, 1, 1, 1, 0, 1, 1, 1])

    def test_invalid_bits_rejected(self):
        with pytest.raises(ValueError):
            pack_bitmap([0, 2])
        with pytest.raises(ValueError):
            unpack_bitmap(256, 8)
        with pytest.raises(ValueError):
            unpack_bitmap(-1, 8)

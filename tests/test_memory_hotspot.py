"""Tests for hot-spot tree saturation in buffered MINs (§2.1, Fig 2.1)."""

import pytest

from repro.memory.hotspot import BufferedMINSimulator, tree_saturation_sweep


class TestBufferedMIN:
    def test_uncontended_traffic_flows(self):
        sim = BufferedMINSimulator(8, seed=0)
        report = sim.run(cycles=2000, rate=0.2, hot_fraction=0.0)
        assert report.delivered > 0
        assert report.mean_latency_cold >= sim.k  # at least one hop per stage

    def test_hot_spot_raises_cold_latency(self):
        """Tree saturation: hot traffic delays *unrelated* cold traffic."""
        cold = BufferedMINSimulator(16, seed=1).run(3000, rate=0.5, hot_fraction=0.0)
        hot = BufferedMINSimulator(16, seed=1).run(3000, rate=0.5, hot_fraction=0.4)
        assert hot.mean_latency_cold > 1.4 * cold.mean_latency_cold

    def test_hot_spot_saturates_buffers(self):
        sim = BufferedMINSimulator(16, buffer_depth=2, seed=2)
        report = sim.run(3000, rate=0.6, hot_fraction=0.4)
        assert report.saturated_buffers > 0
        assert report.blocked_injections > 0

    def test_no_hot_traffic_no_saturation(self):
        sim = BufferedMINSimulator(16, buffer_depth=8, seed=3)
        report = sim.run(2000, rate=0.1, hot_fraction=0.0)
        assert report.saturated_buffers == 0

    def test_packets_routed_to_correct_module(self):
        sim = BufferedMINSimulator(8, seed=4)
        # Single packet from input 3 to module 5, then drain.
        injections = [None] * 8
        injections[3] = (5, False)
        sim.step(injections)
        for _ in range(10):
            sim.step([None] * 8)
        assert sim.module_busy_until[5] >= 0
        assert sum(1 for m in sim.module_busy_until if m >= 0) == 1

    def test_injection_slot_count_validated(self):
        sim = BufferedMINSimulator(8)
        with pytest.raises(ValueError):
            sim.step([None] * 4)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            BufferedMINSimulator(8, buffer_depth=0)
        with pytest.raises(ValueError):
            BufferedMINSimulator(8, service_time=0)
        sim = BufferedMINSimulator(8)
        with pytest.raises(ValueError):
            sim.run(10, rate=1.5, hot_fraction=0.0)


class TestSweep:
    def test_latency_monotone_in_hot_fraction(self):
        """The Fig 2.1 moral as a curve: cold latency rises with hot rate
        (while the CFM comparator would stay flat at β)."""
        results = tree_saturation_sweep(
            n_ports=16, rate=0.5, hot_fractions=[0.0, 0.2, 0.4],
            cycles=3000, seed=5,
        )
        lats = [rep.mean_latency_cold for _h, rep in results]
        assert lats[0] < lats[1] < lats[2]

"""Parameter-sweep property tests for the AT-space conflict-freedom claims.

The paper's central invariants (§3.1) must hold at every hardware shape,
not just the 8-bank examples the figures use.  This sweep checks the
(n_banks, bank_cycle) shapes named in the roadmap:

* the per-processor AT-space partitions are mutually exclusive,
* bank busy intervals tile without overlap under worst-case load, and
* a full-load :class:`CFMemory` run never raises :class:`ConflictError`.
"""

import pytest

from repro.core.atspace import ATSpace, verify_busy_intervals
from repro.core.cfm import AccessKind, CFMemory, ConflictError
from repro.core.config import CFMConfig

SHAPES = [(4, 1), (8, 2), (16, 4), (32, 8)]


@pytest.mark.parametrize("n_banks,bank_cycle", SHAPES)
class TestATSpaceSweep:
    def test_partitions_are_exclusive(self, n_banks, bank_cycle):
        space = ATSpace(n_banks, bank_cycle)
        assert space.partitions_are_exclusive()

    def test_busy_intervals_never_overlap(self, n_banks, bank_cycle):
        space = ATSpace(n_banks, bank_cycle)
        # Several full periods, so wrap-around seams are also covered.
        assert verify_busy_intervals(space, slots=4 * space.period)

    def test_partitions_cover_utilized_fraction(self, n_banks, bank_cycle):
        space = ATSpace(n_banks, bank_cycle)
        parts = space.all_partitions()
        # One cell per slot per processor over a full period.
        assert all(len(part) == space.period for part in parts)
        covered = set().union(*parts)
        # Exclusive => the union's size is the sum of the parts' sizes.
        assert len(covered) == space.n_procs * space.period
        # Covered share of the b x b AT-space matches the closed form b/c.
        total_cells = space.period * space.n_banks
        assert len(covered) / total_cells == pytest.approx(
            space.utilized_fraction())

    def test_cfm_full_load_never_conflicts(self, n_banks, bank_cycle):
        cfg = CFMConfig(n_procs=n_banks // bank_cycle, bank_cycle=bank_cycle)
        assert cfg.n_banks == n_banks
        mem = CFMemory(cfg)
        completed = []
        outstanding = [False] * cfg.n_procs

        def finished(acc):
            outstanding[acc.proc] = False
            completed.append(acc.latency)

        cycles = 6 * cfg.block_access_time
        try:
            for _ in range(cycles):
                for p in range(cfg.n_procs):
                    if not outstanding[p]:
                        mem.issue(p, AccessKind.READ, offset=0,
                                  on_finish=finished)
                        outstanding[p] = True
                mem.tick()
        except ConflictError as exc:  # pragma: no cover - the regression
            pytest.fail(f"CFMemory raised under full load at "
                        f"b={n_banks}, c={bank_cycle}: {exc}")
        assert completed, "full-load run completed no accesses"
        # Conflict-free => every access finishes in exactly beta slots.
        assert set(completed) == {cfg.block_access_time}

"""The Fig 5.4 lock-transfer scenario, replayed step by step.

The figure's cast: processor 0 holds the lock; processors 1 and 3 spin on
their local cached copies.  P0 releases (read-invalidate to own the lock
block, reset it, write-back).  The release invalidates the spinners'
copies; their re-reads observe the free lock; they compete with
read-invalidates; exactly one wins and becomes the new holder.
"""

import pytest

from repro.cache.protocol import CacheSystem
from repro.cache.state import CacheLineState as S
from repro.cache.sync_ops import ReadModifyWrite
from repro.core.block import Block


@pytest.fixture
def scene():
    """P0 holds the lock dirty; P1 and P3 have valid (locked) copies."""
    sys_ = CacheSystem(4)
    sys_.mem.poke_block(0, Block.zeros(4))
    # P0 acquires: read-invalidate + set lock word.
    acq = ReadModifyWrite(sys_, 0, 0, lambda old: {0: 1}).start()
    sys_.run_until(lambda: acq.done)
    # The acquire's flush leaves P0 valid; spinners cache the locked value.
    r1 = sys_.load(1, 0)
    r3 = sys_.load(3, 0)
    sys_.run_ops([r1, r3])
    assert r1.result.values[0] == 1 and r3.result.values[0] == 1
    assert sys_.dirs[1].state_of(0) is S.VALID
    assert sys_.dirs[3].state_of(0) is S.VALID
    return sys_


class TestFig54Scenario:
    def test_spinners_hit_locally_before_release(self, scene):
        """Panels a-: waiting processors 'continuously read their local
        cache copies' — pure hits, no memory operations."""
        before = scene.stats_memory_ops
        spins = [scene.load(p, 0) for p in (1, 3)]
        scene.run_ops(spins)
        assert all(op.was_hit for op in spins)
        assert scene.stats_memory_ops == before

    def test_release_invalidates_spinners(self, scene):
        """Panels a–d: P0's read-invalidate drops P1's and P3's copies."""
        rel = ReadModifyWrite(scene, 0, 0, lambda old: {0: 0}).start()
        scene.run_until(lambda: rel.done)
        assert scene.dirs[1].state_of(0) is S.INVALID
        assert scene.dirs[3].state_of(0) is S.INVALID
        assert scene.mem.peek_block(0).values[0] == 0  # lock published free

    def test_exactly_one_new_holder(self, scene):
        """Panels e–p: re-reads observe the free lock; the competing
        read-invalidates admit exactly one winner."""
        rel = ReadModifyWrite(scene, 0, 0, lambda old: {0: 0}).start()
        scene.run_until(lambda: rel.done)
        # Both spinners re-read (miss) and try to take the lock.
        t1 = ReadModifyWrite(
            scene, 1, 0, lambda old: {0: 1} if old[0].value == 0 else {}
        ).start()
        t3 = ReadModifyWrite(
            scene, 3, 0, lambda old: {0: 1} if old[0].value == 0 else {}
        ).start()
        scene.run_until(lambda: t1.done and t3.done)
        winners = [
            t for t in (t1, t3) if t.old_block and t.old_block[0].value == 0
        ]
        assert len(winners) == 1
        assert scene.mem.peek_block(0).values[0] == 1  # lock taken again
        scene.check_coherence_invariant()

    def test_transfer_takes_about_three_accesses(self, scene):
        """'The entire lock transfer takes approximately the time required
        to complete three memory accesses.'"""
        beta = scene.cfg.block_access_time
        start = scene.slot
        rel = ReadModifyWrite(scene, 0, 0, lambda old: {0: 0}).start()
        scene.run_until(lambda: rel.done)
        t1 = ReadModifyWrite(
            scene, 1, 0, lambda old: {0: 1} if old[0].value == 0 else {}
        ).start()
        scene.run_until(lambda: t1.done)
        elapsed = scene.slot - start
        # Release RI + WB, new holder read + RI + WB ≈ 5 accesses for the
        # full round trip; the *transfer* portion the paper counts (WB of
        # old holder, read + RI of new holder) is 3 of them.
        assert elapsed <= 7 * beta
        assert elapsed >= 3 * beta

    def test_loser_returns_to_spinning(self, scene):
        """Panel p: the losing processor re-caches the locked value."""
        rel = ReadModifyWrite(scene, 0, 0, lambda old: {0: 0}).start()
        scene.run_until(lambda: rel.done)
        t1 = ReadModifyWrite(
            scene, 1, 0, lambda old: {0: 1} if old[0].value == 0 else {}
        ).start()
        scene.run_until(lambda: t1.done)
        t3 = ReadModifyWrite(
            scene, 3, 0, lambda old: {0: 1} if old[0].value == 0 else {}
        ).start()
        scene.run_until(lambda: t3.done)
        assert t3.old_block[0].value == 1  # observed 'locked': lost
        spin = scene.load(3, 0)
        scene.run_ops([spin])
        assert scene.dirs[3].state_of(0) is S.VALID  # back to local spinning

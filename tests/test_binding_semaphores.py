"""Tests for the locking-semaphore baseline (§6.1.1)."""

import pytest

from repro.binding.semaphores import Lock, SemaphoreRuntime, Unlock
from repro.sim.procs import Delay


class TestSemaphores:
    def test_mutual_exclusion(self):
        rt = SemaphoreRuntime()
        trace = []

        def user(name):
            def gen():
                yield Lock("s")
                trace.append((name, "in", rt.sched.cycle))
                yield Delay(4)
                trace.append((name, "out", rt.sched.cycle))
                yield Unlock("s")

            return gen()

        rt.spawn(user("a"))
        rt.spawn(user("b"))
        rt.run()
        spans = {}
        for name, ev, c in trace:
            spans.setdefault(name, {})[ev] = c
        assert (
            spans["b"]["in"] >= spans["a"]["out"]
            or spans["a"]["in"] >= spans["b"]["out"]
        )

    def test_fifo_handoff(self):
        rt = SemaphoreRuntime()
        order = []

        def user(name, delay):
            def gen():
                yield Delay(delay)
                yield Lock("s")
                order.append(name)
                yield Delay(3)
                yield Unlock("s")

            return gen()

        rt.spawn(user("a", 0))
        rt.spawn(user("b", 1))
        rt.spawn(user("c", 2))
        rt.run()
        assert order == ["a", "b", "c"]

    def test_independent_semaphores_parallel(self):
        rt = SemaphoreRuntime()
        log = []

        def user(name, sem):
            def gen():
                yield Lock(sem)
                log.append((name, rt.sched.cycle))
                yield Delay(5)
                yield Unlock(sem)

            return gen()

        rt.spawn(user("a", "s1"))
        rt.spawn(user("b", "s2"))
        rt.run()
        cycles = [c for _n, c in log]
        assert max(cycles) - min(cycles) <= 1

    def test_relock_rejected(self):
        rt = SemaphoreRuntime()

        def bad():
            yield Lock("s")
            yield Lock("s")

        rt.spawn(bad())
        with pytest.raises(ValueError):
            rt.run()

    def test_unlock_by_nonholder_rejected(self):
        rt = SemaphoreRuntime()

        def bad():
            yield Unlock("s")

        rt.spawn(bad())
        with pytest.raises(ValueError):
            rt.run()

    def test_stats(self):
        rt = SemaphoreRuntime()

        def user():
            yield Lock("s")
            yield Delay(2)
            yield Unlock("s")

        rt.spawn(user())
        rt.spawn(user())
        rt.run()
        assert rt.stats_acquires == 2
        assert rt.stats_waits == 1

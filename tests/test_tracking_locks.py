"""Tests for busy-wait lock/unlock on atomic swap (§4.2.2)."""

import pytest

from repro.tracking.locks import SpinLockSystem


class TestSpinLock:
    @pytest.mark.parametrize("n", [2, 4, 8])
    def test_everyone_acquires_once(self, n):
        sys_ = SpinLockSystem(n, cs_cycles=5)
        accs = sys_.run()
        assert len(accs) == n
        assert sorted(a.proc for a in accs) == list(range(n))

    def test_mutual_exclusion(self):
        sys_ = SpinLockSystem(8, cs_cycles=6)
        sys_.run()
        assert sys_.mutual_exclusion_held

    def test_critical_sections_have_min_length(self):
        sys_ = SpinLockSystem(4, cs_cycles=10)
        accs = sys_.run()
        for a in accs:
            assert a.released_slot - a.acquired_slot >= 10

    def test_single_client_uncontended(self):
        sys_ = SpinLockSystem(4, contenders=[2], cs_cycles=3)
        accs = sys_.run()
        assert len(accs) == 1
        # Uncontended lock = one swap (2β) with no spinning.
        assert accs[0].wait <= 2 * sys_.config.block_access_time + 4

    def test_unlock_latency_unaffected_by_spinners(self):
        """§4.2.2: spinning readers never delay the holder's unlock write
        — the hot-spot problem cannot occur."""
        solo = SpinLockSystem(8, contenders=[0], cs_cycles=5)
        solo.run()
        crowd = SpinLockSystem(8, cs_cycles=5)
        crowd.run()
        # Unlock is a simple write: β slots in both cases (plus retries
        # against competing swap-writes, which are not reads).
        assert min(crowd.unlock_latencies) == solo.unlock_latencies[0]

    def test_subset_of_contenders(self):
        sys_ = SpinLockSystem(8, contenders=[1, 4, 6], cs_cycles=4)
        accs = sys_.run()
        assert sorted(a.proc for a in accs) == [1, 4, 6]
        assert sys_.mutual_exclusion_held

"""Tests for the CFM configuration algebra (§3.1.4, Tables 3.2/3.3)."""

import pytest

from repro.core.config import CFMConfig, tradeoff_table


class TestCFMConfig:
    def test_banks_default_to_c_times_n(self):
        cfg = CFMConfig(n_procs=4, bank_cycle=2)
        assert cfg.n_banks == 8

    def test_block_size_is_banks_times_word(self):
        cfg = CFMConfig(n_procs=8, word_width=32)
        assert cfg.block_words == 8
        assert cfg.block_size_bits == 256
        assert cfg.block_size_bytes == 32

    def test_block_access_time_formula(self):
        # β = b + c − 1 (§3.1.4)
        assert CFMConfig(n_procs=4, bank_cycle=1).block_access_time == 4
        assert CFMConfig(n_procs=4, bank_cycle=2).block_access_time == 9
        assert CFMConfig(n_procs=8, bank_cycle=2).block_access_time == 17

    def test_fully_conflict_free_detection(self):
        assert CFMConfig(n_procs=4, bank_cycle=2).fully_conflict_free
        partial = CFMConfig(n_procs=16, bank_cycle=1, n_modules=4, n_banks=16)
        assert not partial.fully_conflict_free

    def test_partial_module_structure(self):
        cfg = CFMConfig(n_procs=64, bank_cycle=2, n_modules=8, n_banks=128)
        assert cfg.banks_per_module == 16
        assert cfg.block_access_time == 17  # matches Figs 3.14/3.15
        assert cfg.procs_per_module_slot == 8
        assert cfg.n_clusters == 8

    def test_bank_for_mapping(self):
        cfg = CFMConfig(n_procs=4, bank_cycle=2)
        # Table 3.1: at slot t processor p reaches bank (t + 2p) mod 8
        assert cfg.bank_for(0, 0) == 0
        assert cfg.bank_for(3, 0) == 6
        assert cfg.bank_for(3, 2) == 0
        assert cfg.bank_for(1, 7) == 1

    def test_bank_for_rejects_out_of_range_proc(self):
        cfg = CFMConfig(n_procs=4)
        with pytest.raises(ValueError):
            cfg.bank_for(4, 0)

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            CFMConfig(n_procs=0)
        with pytest.raises(ValueError):
            CFMConfig(n_procs=4, n_modules=3)  # 4 banks not divisible by 3
        with pytest.raises(ValueError):
            # 3 banks per module is not a multiple of the bank cycle 2
            CFMConfig(n_procs=3, bank_cycle=2, n_modules=2, n_banks=6)

    def test_describe_mentions_kind(self):
        assert "fully" in CFMConfig(n_procs=4).describe()


class TestTradeoffTable:
    def test_reproduces_table_3_3(self):
        # Table 3.3: ℓ = 256, c = 2
        rows = tradeoff_table(block_size_bits=256, bank_cycle=2)
        got = [(r.n_banks, r.word_width, r.memory_latency, r.n_procs) for r in rows]
        assert got == [
            (256, 1, 257, 128),
            (128, 2, 129, 64),
            (64, 4, 65, 32),
            (32, 8, 33, 16),
            (16, 16, 17, 8),
            (8, 32, 9, 4),
            (4, 64, 5, 2),
            (2, 128, 3, 1),
        ]

    def test_paper_rows_subset(self):
        """The paper's printed table stops at 8 banks; those rows match."""
        rows = tradeoff_table(256, 2)
        paper = {(256, 1, 257, 128), (64, 4, 65, 32), (8, 32, 9, 4)}
        assert paper <= {(r.n_banks, r.word_width, r.memory_latency, r.n_procs)
                         for r in rows}

    def test_block_size_conserved(self):
        for r in tradeoff_table(512, 4):
            assert r.n_banks * r.word_width == 512
            assert r.n_procs == r.n_banks // 4

    def test_c1_latency_equals_banks(self):
        for r in tradeoff_table(64, 1):
            assert r.memory_latency == r.n_banks

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            tradeoff_table(0, 2)
        with pytest.raises(ValueError):
            tradeoff_table(256, 0)

"""Tests for the synchronous switch box (Fig 3.4) and Table 3.1."""

import pytest

from repro.core.switch import (
    Demultiplexer,
    SynchronousSwitchBox,
    address_path_table,
    data_path_table,
    processor_bank_path,
)


class TestSwitchBox:
    def test_fig_3_4_states(self):
        """Fig 3.4 b–e: input i → output (t + i) mod 4."""
        sw = SynchronousSwitchBox(4)
        assert sw.mapping(0) == {0: 0, 1: 1, 2: 2, 3: 3}
        assert sw.mapping(1) == {0: 1, 1: 2, 2: 3, 3: 0}
        assert sw.mapping(2) == {0: 2, 1: 3, 2: 0, 3: 1}
        assert sw.mapping(3) == {0: 3, 1: 0, 2: 1, 3: 2}

    def test_period_wraps(self):
        sw = SynchronousSwitchBox(4)
        assert sw.mapping(4) == sw.mapping(0)
        assert sw.state(9) == 1

    @pytest.mark.parametrize("n", [2, 4, 8, 16])
    def test_every_state_is_a_permutation(self, n):
        sw = SynchronousSwitchBox(n)
        for t in range(n):
            assert sw.is_permutation(t)

    def test_input_for_inverts_output_for(self):
        sw = SynchronousSwitchBox(8)
        for t in range(8):
            for i in range(8):
                assert sw.input_for(sw.output_for(i, t), t) == i

    def test_route_never_collides(self):
        sw = SynchronousSwitchBox(4)
        out = sw.route({0: "a", 1: "b", 2: "c", 3: "d"}, slot=2)
        assert sorted(out.values()) == ["a", "b", "c", "d"]
        assert out[2] == "a"  # input 0 → output (2+0) mod 4

    def test_out_of_range_ports_rejected(self):
        sw = SynchronousSwitchBox(4)
        with pytest.raises(ValueError):
            sw.output_for(4, 0)
        with pytest.raises(ValueError):
            sw.input_for(-1, 0)


class TestAddressPaths:
    def test_table_3_1_even_slots(self):
        """Table 3.1: P0..P3 on banks (t + 2p) mod 8."""
        table = address_path_table(4, 2)
        assert table[0] == {0: 0, 2: 1, 4: 2, 6: 3}
        assert table[1] == {1: 0, 3: 1, 5: 2, 7: 3}
        assert table[2] == {2: 0, 4: 1, 6: 2, 0: 3}
        assert table[7] == {7: 0, 1: 1, 3: 2, 5: 3}

    def test_table_has_full_period(self):
        assert len(address_path_table(4, 2)) == 8

    def test_data_paths_shifted_one_slot(self):
        """§3.1.3: data path connections lag the address paths by a slot."""
        addr = address_path_table(4, 2)
        data = data_path_table(4, 2)
        for t in range(1, 8):
            assert data[t] == addr[t - 1]

    def test_processor_bank_path_bounds(self):
        with pytest.raises(ValueError):
            processor_bank_path(4, 2, 4, 0)


class TestDemultiplexer:
    def test_leg_selection_cycles(self):
        d = Demultiplexer(2)
        assert [d.select(t) for t in range(4)] == [0, 1, 0, 1]

    def test_invalid_fanout(self):
        with pytest.raises(ValueError):
            Demultiplexer(0)

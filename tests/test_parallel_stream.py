"""Streaming sweep semantics and the seed-derivation contract.

Pins the satellite behaviours the serving layer builds on:

* :func:`repro.fastpath.parallel.map_specs` streams results through
  ``Pool.imap`` in spec order and fires ``on_result`` per completed spec
  on both the inline and pooled paths — identical returned lists either way.
* :func:`repro.fastpath.parallel.sweep` surfaces per-spec progress events
  (including the first failure) while later specs may still be running.
* ``ops_per_sec`` emits ``null`` — not ``0.0`` — when a report carries no
  ``"completed"`` count, so "no data" stays distinguishable from "zero
  throughput" in bench documents.
* :func:`repro.fastpath.parallel.derive_seed` is a pure function of its
  inputs: golden values pinned, distinct across adjacent (shape, seed)
  keys, and identical when computed in a separate process.
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

from repro.fastpath.parallel import derive_seed, map_specs, sweep
from repro.obs.bench import ops_per_sec

SPECS = [
    {"system": "cfm", "params": {"n_procs": 4, "bank_cycle": 1, "cycles": 200}},
    {"system": "interleaved",
     "params": {"n_procs": 4, "n_modules": 4, "rate": 0.5, "beta": 2,
                "cycles": 200, "seed": 7}},
    {"system": "cache", "params": {"n_procs": 4, "rounds": 2}},
]

FAILING_SPEC = {"system": "no_such_system", "params": {}}


class TestMapSpecsStreaming:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_on_result_fires_in_spec_order(self, jobs):
        events = []
        results = map_specs(
            SPECS, jobs=jobs,
            on_result=lambda i, spec, res: events.append((i, spec["system"],
                                                          res)),
        )
        assert [e[0] for e in events] == [0, 1, 2]
        assert [e[1] for e in events] == [s["system"] for s in SPECS]
        # The callback saw exactly the results the call returned.
        assert [e[2] for e in events] == results

    def test_streamed_results_identical_to_inline(self):
        inline = map_specs(SPECS, jobs=1)
        pooled = map_specs(SPECS, jobs=2)
        for (r1, _, e1), (r2, _, e2) in zip(inline, pooled):
            assert r1 == r2
            assert e1 == e2

    def test_failure_is_data_with_callback(self):
        events = []
        results = map_specs(
            [SPECS[0], FAILING_SPEC], jobs=2,
            on_result=lambda i, spec, res: events.append((i, res[2])),
        )
        assert events[0][1] is None
        assert "no_such_system" in events[1][1]
        assert results[0][2] is None and results[1][2] is not None


class TestSweepProgress:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_progress_events_stream_per_spec(self, jobs):
        events = []
        doc = sweep(SPECS, jobs=jobs, name="t", progress=events.append)
        assert len(events) == len(SPECS)
        for i, (event, spec) in enumerate(zip(events, SPECS)):
            assert event["index"] == i
            assert event["total"] == len(SPECS)
            assert event["system"] == spec["system"]
            assert event["wall_time_s"] > 0
            assert event["error"] is None
        assert len(doc["runs"]) == len(SPECS)
        assert "failures" not in doc

    def test_first_failure_surfaces_in_its_event(self):
        events = []
        doc = sweep([FAILING_SPEC] + SPECS[:1], jobs=1, name="t",
                    progress=events.append)
        assert "no_such_system" in events[0]["error"]
        assert "\n" not in events[0]["error"]  # first line only, not a traceback
        assert events[1]["error"] is None
        assert doc["partial"] is True
        assert len(doc["failures"]) == 1

    def test_progress_is_observational_only(self):
        with_progress = sweep(SPECS, jobs=1, name="t", timing=False,
                              progress=lambda e: None)
        without = sweep(SPECS, jobs=1, name="t", timing=False)
        assert with_progress == without


class TestOpsPerSecNull:
    def test_missing_completed_is_null_not_zero(self):
        assert ops_per_sec({"system": "stub"}, 1.0) is None

    def test_zero_elapsed_is_null(self):
        assert ops_per_sec({"completed": 100}, 0.0) is None

    def test_live_value(self):
        assert ops_per_sec({"completed": 100}, 2.0) == 50.0

    def test_sweep_timing_emits_null_for_countless_report(self, monkeypatch):
        # A run_spec whose report never counted completions: its timing row
        # must carry ops_per_sec=null, pinning the "missing data is not
        # zero throughput" contract end to end through sweep().
        monkeypatch.setattr("repro.fastpath.parallel.run_spec",
                            lambda spec: {"system": spec["system"]})
        doc = sweep([{"system": "stub", "params": {}}], jobs=1, name="t")
        row = doc["timing"]["runs"][0]
        assert row["ops_per_sec"] is None
        assert row["wall_time_s"] > 0


class TestDeriveSeed:
    GOLDEN = {
        (0, ("serve.shard", 4, 1)): 788197322,
        (0, ("serve.shard", 8, 2)): 1076318473,
        (42, ("sweep", "cfm", 0)): 1577818601,
        (7, ()): 834304025,
    }

    def test_golden_values(self):
        # These exact integers are load-bearing: shard routing
        # (repro.serve.shard) and sweep seeding both assume the derivation
        # never changes across versions.
        for (base, keys), expected in self.GOLDEN.items():
            assert derive_seed(base, *keys) == expected

    def test_in_range_and_deterministic(self):
        for base in (0, 1, 7, 2**30):
            for keys in ((), ("a",), ("a", 1), (1, "a")):
                value = derive_seed(base, *keys)
                assert 0 <= value < 2**31 - 1
                assert value == derive_seed(base, *keys)

    def test_distinct_across_adjacent_keys(self):
        shapes = [(4, 1), (8, 2), (16, 4), (32, 8)]
        seeds = range(4)
        values = {derive_seed(s, "grid", b, c)
                  for s in seeds for b, c in shapes}
        assert len(values) == len(shapes) * len(seeds)

    def test_key_order_matters(self):
        assert derive_seed(0, "a", "b") != derive_seed(0, "b", "a")
        assert derive_seed(0, 1, 2) != derive_seed(0, 2, 1)

    def test_identical_across_processes(self):
        cases = list(self.GOLDEN)
        code = (
            "from repro.fastpath.parallel import derive_seed\n"
            + "\n".join(
                "print(derive_seed({}, *{!r}))".format(base, keys)
                for base, keys in cases
            )
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True,
            timeout=60, env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
        assert proc.returncode == 0, proc.stderr
        got = [int(line) for line in proc.stdout.split()]
        assert got == [self.GOLDEN[c] for c in cases]

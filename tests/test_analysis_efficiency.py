"""Tests for the closed-form efficiency models (§3.4, Figs 3.13–3.15)."""

import pytest

from repro.analysis.efficiency import (
    conflict_probability,
    conventional_efficiency,
    expected_access_time,
    expected_retries,
    fig_3_13_data,
    fig_3_14_data,
    fig_3_15_data,
    fully_conflict_free_efficiency,
    partial_cf_conflict_probability,
    partial_cf_efficiency,
    partial_cf_p1,
    partial_cf_p2,
)


class TestConventionalModel:
    def test_conflict_probability_formula(self):
        # P(r) = (n−1)·r·β / m
        assert conflict_probability(0.02, 8, 8, 17) == pytest.approx(
            7 * 0.02 * 17 / 8
        )

    def test_zero_rate_perfect_efficiency(self):
        assert conventional_efficiency(0.0, 8, 8, 17) == 1.0

    def test_efficiency_closed_form(self):
        p = conflict_probability(0.02, 8, 8, 17)
        e = conventional_efficiency(0.02, 8, 8, 17)
        assert e == pytest.approx((2 - 2 * p) / (2 - p))

    def test_expected_retries(self):
        assert expected_retries(0.5) == pytest.approx(1.0)
        assert expected_retries(0.0) == 0.0

    def test_expected_access_time_consistent_with_efficiency(self):
        """E = β / M must hold by construction."""
        p = 0.3
        beta = 17
        assert beta / expected_access_time(p, beta) == pytest.approx(
            (2 - 2 * p) / (2 - p)
        )

    def test_efficiency_monotone_decreasing_in_rate(self):
        es = [conventional_efficiency(r, 8, 8, 17) for r in (0.0, 0.02, 0.04, 0.06)]
        assert es == sorted(es, reverse=True)

    def test_saturation_clamps_to_zero(self):
        assert conventional_efficiency(10.0, 8, 8, 17) == 0.0

    def test_single_processor_never_conflicts(self):
        assert conventional_efficiency(0.05, 1, 8, 17) == 1.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            conflict_probability(-0.1, 8, 8, 17)
        with pytest.raises(ValueError):
            conventional_efficiency(0.1, 0, 8, 17)
        with pytest.raises(ValueError):
            expected_retries(1.0)


class TestPartialCFModel:
    def test_p_formula(self):
        # P(r,λ) = ((−mλ² + 2λ + m − 2)/(m − 1)) r β
        m, lam, r, beta = 8, 0.7, 0.03, 17
        expected = (-m * lam**2 + 2 * lam + m - 2) / (m - 1) * r * beta
        assert partial_cf_conflict_probability(r, lam, m, beta) == pytest.approx(
            expected
        )

    def test_p_combines_p1_p2(self):
        """P = λ·P1 + (1−λ)·P2, the §3.4.2 derivation."""
        m, lam, r, beta = 8, 0.6, 0.02, 17
        p1 = partial_cf_p1(r, lam, beta)
        p2 = partial_cf_p2(r, lam, m, beta)
        assert partial_cf_conflict_probability(r, lam, m, beta) == pytest.approx(
            lam * p1 + (1 - lam) * p2
        )

    def test_full_locality_is_conflict_free(self):
        assert partial_cf_conflict_probability(0.05, 1.0, 8, 17) == pytest.approx(0.0)
        assert partial_cf_efficiency(0.05, 1.0, 8, 17) == 1.0

    def test_efficiency_monotone_in_locality(self):
        es = [partial_cf_efficiency(0.04, lam, 8, 17) for lam in (0.3, 0.5, 0.7, 0.9)]
        assert es == sorted(es)

    def test_needs_at_least_two_modules(self):
        with pytest.raises(ValueError):
            partial_cf_efficiency(0.04, 0.5, 1, 17)

    def test_locality_bounds(self):
        with pytest.raises(ValueError):
            partial_cf_efficiency(0.04, 1.5, 8, 17)


class TestFigureData:
    def test_fig_3_13_conflict_free_is_flat_one(self):
        data = fig_3_13_data()
        assert all(v == 1.0 for v in data["conflict_free"])

    def test_fig_3_13_conventional_decreasing(self):
        data = fig_3_13_data()
        conv = data["conventional"]
        assert conv[0] == 1.0
        assert all(a >= b for a, b in zip(conv, conv[1:]))
        # At the right edge the conventional memory is far below the CFM.
        assert conv[-1] < 0.35

    def test_fig_3_14_ordering(self):
        """Higher λ curves dominate; all beat the conventional comparator
        at high rates (the paper's visual claim)."""
        data = fig_3_14_data()
        last = -1
        for lam in (0.5, 0.7, 0.8, 0.9):
            curve = data[f"lambda={lam}"]
            assert curve[-1] > last
            last = curve[-1]
        assert data["lambda=0.5"][-1] > data["conventional"][-1]

    def test_fig_3_15_same_shape_larger_machine(self):
        data = fig_3_15_data()
        assert "lambda=0.9" in data
        assert data["lambda=0.9"][-1] > data["conventional"][-1]

    def test_rate_axis(self):
        data = fig_3_13_data(r_max=0.06, points=61)
        assert data["rate"][0] == 0.0
        assert data["rate"][-1] == pytest.approx(0.06)
        assert len(data["rate"]) == 61


def test_fully_conflict_free_constant():
    assert fully_conflict_free_efficiency(0.05) == 1.0

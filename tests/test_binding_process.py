"""Tests for process binding: PROC, permission levels, bfork (§6.4)."""

import pytest

from repro.binding.manager import Bind, BindingRuntime, SetPermission
from repro.binding.process import (
    ProcHandle,
    levels_range,
    make_proc_array,
    normalize_levels,
)
from repro.binding.region import AccessType
from repro.sim.procs import Delay


class TestLevels:
    def test_normalize_single_int(self):
        assert normalize_levels(3) == frozenset({3})

    def test_normalize_iterable(self):
        assert normalize_levels([1, 2, 2]) == frozenset({1, 2})

    def test_levels_range_inclusive(self):
        """The paper's 0:i notation covers both endpoints."""
        assert levels_range(0, 3) == frozenset({0, 1, 2, 3})
        with pytest.raises(ValueError):
            levels_range(3, 1)


class TestProcHandle:
    def test_make_proc_array(self):
        arr = make_proc_array("p", 4)
        assert [h.index for h in arr] == [0, 1, 2, 3]
        assert all(h.name == "p" for h in arr)
        with pytest.raises(ValueError):
            make_proc_array("p", 0)

    def test_satisfies(self):
        h = ProcHandle("p", 0)
        h.permission = {0, 1, 2}
        assert h.satisfies(frozenset({1, 2}))
        assert not h.satisfies(frozenset({3}))


class TestProcessBinding:
    def test_bind_blocks_until_level_granted(self):
        rt = BindingRuntime()
        target = ProcHandle("t", 0)
        log = []

        def waiter():
            yield Bind(target, AccessType.EX, blocking=True, level=5)
            log.append(("woke", rt.sched.cycle))

        def granter():
            yield Delay(4)
            yield SetPermission(target, 5)
            log.append(("granted", rt.sched.cycle))

        rt.spawn(waiter())
        g = rt.spawn(granter())
        target.pid = g.pid  # the granter owns the PROC
        rt.run()
        events = dict(log)
        assert events["woke"] >= events["granted"]

    def test_bind_immediate_when_already_granted(self):
        rt = BindingRuntime()
        target = ProcHandle("t", 0)
        target.permission = {7}
        done = []

        def waiter():
            yield Bind(target, AccessType.EX, blocking=True, level=7)
            done.append(rt.sched.cycle)

        rt.spawn(waiter())
        rt.run()
        assert done[0] <= 2

    def test_nonblocking_process_bind(self):
        rt = BindingRuntime()
        target = ProcHandle("t", 0)
        results = []

        def prober():
            got = yield Bind(target, AccessType.EX, blocking=False, level=1)
            results.append(got)

        rt.spawn(prober())
        rt.run()
        assert results == [False]  # not satisfied, did not block

    def test_own_proc_bind_sets_permission(self):
        """§6.4.2: binding your own PROC sets the permission status."""
        rt = BindingRuntime()
        handles = make_proc_array("p", 1)

        def body(h):
            yield Bind(h, AccessType.EX, level=levels_range(0, 3))

        rt.bfork(handles, body)
        rt.run()
        assert handles[0].permission == {0, 1, 2, 3}

    def test_multi_level_wait(self):
        rt = BindingRuntime()
        target = ProcHandle("t", 0)
        log = []

        def waiter():
            yield Bind(target, AccessType.EX, level=[1, 2])
            log.append(rt.sched.cycle)

        def granter():
            yield Delay(2)
            yield SetPermission(target, 1)  # only half: waiter stays blocked
            yield Delay(2)
            yield SetPermission(target, 2)

        rt.spawn(waiter())
        g = rt.spawn(granter())
        target.pid = g.pid
        rt.run()
        assert log[0] >= 5

    def test_bfork_assigns_pids(self):
        rt = BindingRuntime()
        handles = make_proc_array("p", 3)

        def body(h):
            yield Delay(1)

        procs = rt.bfork(handles, body)
        assert [h.pid for h in handles] == [p.pid for p in procs]
        rt.run()

    def test_ex_required_for_proc_targets(self):
        rt = BindingRuntime()
        target = ProcHandle("t", 0)

        def bad():
            yield Bind(target, AccessType.RW, level=1)

        rt.spawn(bad())
        with pytest.raises(ValueError):
            rt.run()

    def test_level_required(self):
        rt = BindingRuntime()
        target = ProcHandle("t", 0)

        def bad():
            yield Bind(target, AccessType.EX)

        rt.spawn(bad())
        with pytest.raises(ValueError):
            rt.run()

    def test_replace_permission(self):
        rt = BindingRuntime()
        h = ProcHandle("t", 0)
        h.permission = {1, 2}

        def setter():
            yield SetPermission(h, 9, replace=True)

        rt.spawn(setter())
        rt.run()
        assert h.permission == {9}

"""Result-cache correctness: the content-addressed serving cache.

The serving cache's contract (``repro.serve.cache`` + service wiring):

1. **Hit ≡ fresh run** — a cache hit's report is bit-identical (post JSON
   round-trip) to :func:`repro.obs.bench.run_spec` run serially, across
   every engine the client can pin;
2. **Eviction is deterministic** — bounded LRU, least-recently-used out
   first, refreshed by hits;
3. **Fault-injected, failed, and malformed requests never populate it**;
4. **Accounting closes** — per-tenant cache hit+miss sums to the tenant's
   dispatched request count.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.serve import (
    ResultCache,
    ShardedWorkerPool,
    SimulationService,
    cacheable,
    canonical_payload,
    payload_key,
)

CFM_PARAMS = {"n_procs": 4, "bank_cycle": 1, "cycles": 200}
DEAD_BANK_INJECT = {
    "events": [{"kind": "bank_dead", "start": 3, "duration": 1, "target": 1,
                "extra": 0}],
}


def _normalized(doc):
    return json.loads(json.dumps(doc, sort_keys=True))


@pytest.fixture(scope="module")
def pool():
    with ShardedWorkerPool(n_shards=2) as p:
        yield p


def _service(pool, **kwargs):
    kwargs.setdefault("max_inflight", 8)
    return SimulationService(pool=pool, **kwargs)


# --------------------------------------------------------------------------
# Content addressing


class TestContentAddressing:
    def test_canonical_is_field_order_independent(self):
        a = {"system": "cfm", "params": {"n_procs": 4, "cycles": 100}}
        b = {"params": {"cycles": 100, "n_procs": 4}, "system": "cfm"}
        assert canonical_payload(a) == canonical_payload(b)
        assert payload_key(a) == payload_key(b)

    def test_distinct_specs_distinct_keys(self):
        base = {"system": "cfm", "params": dict(CFM_PARAMS)}
        other = {"system": "cfm", "params": dict(CFM_PARAMS, cycles=201)}
        engine = {"system": "cfm",
                  "params": dict(CFM_PARAMS, engine="reference")}
        keys = {payload_key(base), payload_key(other), payload_key(engine)}
        assert len(keys) == 3  # params — engine included — select the entry

    def test_inject_is_never_cacheable(self):
        assert cacheable({"system": "cfm", "params": dict(CFM_PARAMS)})
        assert not cacheable({"system": "cfm", "params": dict(CFM_PARAMS),
                              "inject": dict(DEAD_BANK_INJECT)})


# --------------------------------------------------------------------------
# LRU mechanics (no pool needed)


class TestResultCacheLRU:
    def test_hit_miss_counters_and_roundtrip(self):
        cache = ResultCache(max_entries=4)
        assert cache.get("k1") is None
        assert (cache.hits, cache.misses) == (0, 1)
        cache.put("k1", {"value": [1, 2, 3]})
        assert cache.get("k1") == {"value": [1, 2, 3]}
        assert (cache.hits, cache.misses) == (1, 1)

    def test_hit_returns_a_fresh_object_every_time(self):
        cache = ResultCache(max_entries=4)
        cache.put("k", {"nested": {"list": [1, 2]}})
        first = cache.get("k")
        first["nested"]["list"].append(99)  # caller mutates its copy
        assert cache.get("k") == {"nested": {"list": [1, 2]}}

    def test_eviction_is_deterministic_lru(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", {"r": "a"})
        cache.put("b", {"r": "b"})
        assert cache.put("c", {"r": "c"}) == 1  # a (oldest) evicted
        assert cache.get("a") is None
        assert cache.get("b") == {"r": "b"}  # refreshes b over c
        assert cache.put("d", {"r": "d"}) == 1  # c evicted, not b
        assert cache.get("c") is None
        assert cache.get("b") == {"r": "b"}
        assert cache.evictions == 2

    def test_put_refreshes_recency(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", {"r": 1})
        cache.put("b", {"r": 2})
        cache.put("a", {"r": 3})  # rewrite refreshes a
        cache.put("c", {"r": 4})  # b is now LRU
        assert cache.get("b") is None
        assert cache.get("a") == {"r": 3}

    def test_zero_entries_disables_the_cache(self):
        cache = ResultCache(max_entries=0)
        assert cache.put("k", {"r": 1}) == 0
        assert cache.get("k") is None
        assert len(cache) == 0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError, match="max_entries"):
            ResultCache(max_entries=-1)

    def test_stats_document(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", {"r": 1})
        cache.get("a")
        cache.get("zzz")
        assert cache.stats() == {"hits": 1, "misses": 1, "evictions": 0,
                                 "entries": 1, "max_entries": 2}


# --------------------------------------------------------------------------
# Service-level: hit ≡ fresh bit-identity, across engines


def _engines():
    engines = [None, "reference", "batch"]
    try:
        from repro.fastpath.engine import vector_available

        if vector_available():
            engines.append("vectorized")
    except ImportError:
        pass
    return engines


class TestCacheHitIdentity:
    @pytest.mark.parametrize("engine", _engines())
    def test_hit_bit_identical_to_fresh_run(self, pool, engine):
        from repro.obs.bench import run_spec

        params = dict(CFM_PARAMS)
        if engine is not None:
            params["engine"] = engine

        async def scenario():
            service = _service(pool, cache_size=16)
            request = {"id": "a", "system": "cfm", "params": dict(params)}
            fresh = await service.process(dict(request))
            hit = await service.process(dict(request, id="b"))
            return service, fresh, hit

        service, fresh, hit = asyncio.run(scenario())
        assert fresh["ok"] and "cached" not in fresh
        assert hit["ok"] and hit["cached"] is True
        serial = run_spec({"system": "cfm", "params": dict(params)})
        assert _normalized(hit["report"]) == _normalized(serial)
        assert _normalized(hit["report"]) == _normalized(fresh["report"])
        # Byte-identity on the wire: the serialized reports are equal.
        assert (json.dumps(hit["report"], sort_keys=True)
                == json.dumps(serial, sort_keys=True))
        assert service.cache.hits == 1

    def test_eviction_determinism_at_tiny_cache_size(self, pool):
        async def scenario():
            service = _service(pool, cache_size=1)
            a = {"id": "a", "system": "cfm", "params": dict(CFM_PARAMS)}
            b = {"id": "b", "system": "cfm",
                 "params": dict(CFM_PARAMS, cycles=150)}
            await service.process(dict(a))       # cache: {a}
            await service.process(dict(b))       # evicts a; cache: {b}
            r_a = await service.process(dict(a))  # miss — was evicted
            r_b = await service.process(dict(b))  # miss — a's rerun evicted b
            return service, r_a, r_b

        service, r_a, r_b = asyncio.run(scenario())
        assert "cached" not in r_a and "cached" not in r_b
        assert service.cache.evictions == 3
        assert service.cache.hits == 0
        assert len(service.cache) == 1


# --------------------------------------------------------------------------
# What never enters the cache


class TestCachePopulationGates:
    def test_fault_injected_requests_never_populate(self, pool):
        async def scenario():
            service = _service(pool, cache_size=16)
            faulted = {"id": "f", "system": "cfm",
                       "params": dict(CFM_PARAMS),
                       "inject": dict(DEAD_BANK_INJECT)}
            first = await service.process(dict(faulted))
            second = await service.process(dict(faulted, id="g"))
            return service, first, second

        service, first, second = asyncio.run(scenario())
        assert first["ok"] is False and first["error"]["typed"]
        assert second["ok"] is False and "cached" not in second
        assert len(service.cache) == 0
        assert service.cache.hits == service.cache.misses == 0

    def test_malformed_requests_never_populate(self, pool):
        async def scenario():
            service = _service(pool, cache_size=16)
            bad = await service.process({"id": "x", "system": "cfm",
                                         "params": {"frobnicate": 1}})
            worse = await service.handle_line("{not json")
            return service, bad, worse

        service, bad, worse = asyncio.run(scenario())
        assert bad["error"]["type"] == "RequestError"
        assert worse["error"]["type"] == "RequestError"
        assert len(service.cache) == 0

    def test_failed_results_never_populate(self, pool):
        """Any non-ok worker outcome — SimulationTimeout included — must
        not enter the cache; only completed reports do."""
        async def scenario():
            service = _service(pool, cache_size=16)

            async def timed_out(payload, shard=None):
                return {"ok": False, "error": {
                    "type": "SimulationTimeout", "message": "stuck",
                    "typed": True, "kind": None, "slot": 7,
                }, "wall_ms": 1.0}

            service.batcher.submit = timed_out
            response = await service.process(
                {"id": "t", "system": "cfm", "params": dict(CFM_PARAMS)})
            return service, response

        service, response = asyncio.run(scenario())
        assert response["ok"] is False
        assert response["error"]["type"] == "SimulationTimeout"
        assert len(service.cache) == 0


# --------------------------------------------------------------------------
# Accounting


class TestCacheAccounting:
    def test_tenant_hit_miss_sums_to_request_count(self, pool):
        async def scenario():
            service = _service(pool, cache_size=16)
            requests = []
            for i in range(9):  # 3 distinct specs, repeated 3x, 2 tenants
                requests.append({
                    "id": f"r{i}", "tenant": f"t{i % 2}", "system": "cfm",
                    "params": dict(CFM_PARAMS, cycles=100 + 50 * (i % 3)),
                })
            requests.append({"id": "f", "tenant": "t0", "system": "cfm",
                             "params": dict(CFM_PARAMS),
                             "inject": dict(DEAD_BANK_INJECT)})
            responses = []
            for request in requests:  # serial: repeats must hit
                responses.append(await service.process(dict(request)))
            return service, responses

        service, responses = asyncio.run(scenario())
        snap = service.metrics_snapshot()
        total_requests = 0
        total_cache_events = 0
        for tenant, tsnap in snap["tenants"].items():
            treq = tsnap["requests"]["counts"]
            tcache = tsnap["cache"]["counts"]
            assert (tcache.get("hit", 0) + tcache.get("miss", 0)
                    == treq["total"]), (tenant, tcache, treq)
            total_requests += treq["total"]
            total_cache_events += tcache.get("hit", 0) + tcache.get("miss", 0)
        assert total_requests == len(responses) == 10
        assert total_cache_events == 10
        svc_cache = snap["service"]["serve.cache"]["counts"]
        assert svc_cache["hits"] + svc_cache["misses"] == 10
        # Serial repeats of 3 distinct specs: 6 hits; inject is a miss.
        assert svc_cache["hits"] == 6
        assert sum(1 for r in responses if r.get("cached")) == 6

    def test_metrics_snapshot_carries_cache_and_batch_blocks(self, pool):
        async def scenario():
            service = _service(pool, cache_size=4, max_batch=3)
            await service.process({"id": "a", "system": "cfm",
                                   "params": dict(CFM_PARAMS)})
            await service.process({"id": "b", "system": "cfm",
                                   "params": dict(CFM_PARAMS)})
            return service.metrics_snapshot()

        snap = asyncio.run(scenario())
        assert snap["cache"] == {"hits": 1, "misses": 1, "evictions": 0,
                                 "entries": 1, "max_entries": 4}
        assert snap["batch"]["max_batch"] == 3
        assert snap["batch"]["pending"] == 0
        assert snap["service"]["serve.batch.size"]["n"] == 1
        assert snap["service"]["serve.cache"]["counts"]["hits"] == 1

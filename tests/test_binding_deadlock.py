"""Tests for wait-for-graph deadlock detection."""

from repro.binding.deadlock import (
    build_wait_for_graph,
    find_deadlock_cycle,
    would_deadlock,
)


class TestCycleDetection:
    def test_acyclic_chain(self):
        assert find_deadlock_cycle([(0, 1), (1, 2), (2, 3)]) is None

    def test_two_cycle(self):
        cycle = find_deadlock_cycle([(0, 1), (1, 0)])
        assert set(cycle) == {0, 1}

    def test_long_cycle(self):
        edges = [(i, (i + 1) % 5) for i in range(5)]
        cycle = find_deadlock_cycle(edges)
        assert set(cycle) == {0, 1, 2, 3, 4}

    def test_self_edges_ignored(self):
        assert find_deadlock_cycle([(0, 0)]) is None

    def test_would_deadlock_incremental(self):
        existing = [(0, 1), (1, 2)]
        assert would_deadlock(existing, [(2, 3)]) is None
        assert would_deadlock(existing, [(2, 0)]) is not None

    def test_graph_nodes(self):
        g = build_wait_for_graph([(0, 1), (2, 1)])
        assert set(g.nodes) == {0, 1, 2}
        assert g.has_edge(2, 1)

    def test_diamond_is_not_deadlock(self):
        # Two waiters on one holder: no cycle.
        assert find_deadlock_cycle([(0, 2), (1, 2)]) is None

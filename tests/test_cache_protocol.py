"""Tests for the slot-accurate CFM cache protocol (§5.2, Tables 5.1/5.2,
Fig 5.3)."""

import pytest

from repro.cache.protocol import CacheSystem
from repro.cache.state import CacheLineState as S
from repro.core.block import Block


class TestBasicProtocol:
    def test_read_miss_fills_valid(self):
        sys_ = CacheSystem(4)
        sys_.mem.poke_block(3, Block.of_values([7] * 4))
        op = sys_.load(0, 3)
        sys_.run_ops([op])
        assert op.result.values == [7] * 4
        assert sys_.dirs[0].state_of(3) is S.VALID
        assert op.latency == 4  # β for a clean miss

    def test_read_hit_is_local_and_fast(self):
        sys_ = CacheSystem(4)
        op1 = sys_.load(0, 3)
        sys_.run_ops([op1])
        op2 = sys_.load(0, 3)
        sys_.run_ops([op2])
        assert op2.was_hit
        assert op2.memory_accesses == 0
        assert op2.latency <= 2

    def test_write_invalidates_remote_valid_copies(self):
        sys_ = CacheSystem(4)
        r0 = sys_.load(0, 3)
        r2 = sys_.load(2, 3)
        sys_.run_ops([r0, r2])
        w = sys_.store(1, 3, {0: 42})
        sys_.run_ops([w])
        assert sys_.dirs[1].state_of(3) is S.DIRTY
        assert sys_.dirs[0].state_of(3) is S.INVALID
        assert sys_.dirs[2].state_of(3) is S.INVALID
        sys_.check_coherence_invariant()

    def test_store_value_lands_in_owned_copy(self):
        sys_ = CacheSystem(4)
        w = sys_.store(1, 3, {0: 42, 2: 9})
        sys_.run_ops([w])
        line = sys_.dirs[1].lookup(3)
        assert line.data.values[0] == 42
        assert line.data.values[2] == 9

    def test_write_hit_dirty_needs_no_memory_access(self):
        sys_ = CacheSystem(4)
        w1 = sys_.store(1, 3, {0: 1})
        sys_.run_ops([w1])
        w2 = sys_.store(1, 3, {1: 2})
        sys_.run_ops([w2])
        assert w2.was_hit
        assert w2.memory_accesses == 0

    def test_read_after_remote_dirty_triggers_writeback(self):
        """Table 5.1 read miss / remote dirty: read (trigger write-back)."""
        sys_ = CacheSystem(4)
        w = sys_.store(1, 3, {0: 42})
        sys_.run_ops([w])
        r = sys_.load(0, 3)
        sys_.run_ops([r])
        assert r.result.values[0] == 42
        assert sys_.dirs[1].state_of(3) is S.VALID  # dirty copy flushed
        assert r.retries >= 1  # the read retried during the write-back
        assert sys_.controller.triggered_writebacks >= 1
        sys_.check_coherence_invariant()

    def test_memory_updated_by_writeback(self):
        sys_ = CacheSystem(4)
        w = sys_.store(1, 3, {0: 42})
        sys_.run_ops([w])
        r = sys_.load(0, 3)
        sys_.run_ops([r])
        assert sys_.mem.peek_block(3).values[0] == 42


class TestVictimWriteback:
    def test_dirty_victim_flushed_before_refill(self):
        sys_ = CacheSystem(4, n_lines=4)
        w = sys_.store(0, 1, {0: 5})
        sys_.run_ops([w])
        # Offset 5 maps to the same line (5 % 4 == 1): victim must flush.
        r = sys_.load(0, 5)
        sys_.run_ops([r])
        assert sys_.mem.peek_block(1).values[0] == 5  # victim landed in memory
        assert sys_.dirs[0].state_of(5) is S.VALID
        assert sys_.dirs[0].state_of(1) is S.INVALID
        assert r.memory_accesses >= 2  # write-back + read


class TestConcurrentWriters:
    def test_two_writers_serialize(self):
        sys_ = CacheSystem(4)
        w0 = sys_.store(0, 3, {0: 10})
        w2 = sys_.store(2, 3, {0: 20})
        sys_.run_ops([w0, w2])
        sys_.check_coherence_invariant()
        owners = sys_.dirty_owners(3)
        assert len(owners) == 1
        # The surviving owner's value is one of the two stores.
        line = sys_.dirs[owners[0]].lookup(3)
        assert line.data.values[0] in (10, 20)

    @pytest.mark.parametrize("n", [4, 8])
    def test_write_storm_maintains_single_owner(self, n):
        sys_ = CacheSystem(n)
        ops = [sys_.store(p, 0, {0: p}) for p in range(n)]
        sys_.run_ops(ops)
        sys_.check_coherence_invariant()
        assert len(sys_.dirty_owners(0)) == 1

    def test_fig_5_3_writeback_beats_read_invalidate(self):
        """Fig 5.3: a read-invalidate racing a write-back aborts, retries,
        and completes only after the write-back finishes."""
        sys_ = CacheSystem(4)
        w = sys_.store(0, 3, {0: 7})
        sys_.run_ops([w])
        # P0 now owns block 3 dirty.  Force its write-back and race an RI.
        wb = sys_.flush(0, 3)
        ri = sys_.store(2, 3, {0: 9})
        sys_.run_ops([wb, ri])
        assert ri.retries >= 1
        assert sys_.dirs[2].state_of(3) is S.DIRTY
        assert sys_.dirs[0].state_of(3) is S.INVALID
        sys_.check_coherence_invariant()


class TestReadersAndWriters:
    def test_mixed_load_store_storm_stays_coherent(self):
        sys_ = CacheSystem(8)
        ops = []
        for p in range(8):
            if p % 2 == 0:
                ops.append(sys_.load(p, 0))
            else:
                ops.append(sys_.store(p, 0, {0: p}))
        sys_.run_ops(ops)
        sys_.check_coherence_invariant()

    def test_stale_valid_copy_never_survives(self):
        """After any quiescent point, every VALID copy equals memory."""
        sys_ = CacheSystem(8)
        ops = []
        for round_ in range(3):
            for p in range(8):
                if (p + round_) % 3 == 0:
                    ops.append(sys_.store(p, 0, {0: 100 * round_ + p}))
                else:
                    ops.append(sys_.load(p, 0))
        sys_.run_ops(ops)
        # Flush the final owner so memory is current.
        owners = sys_.dirty_owners(0)
        if owners:
            f = sys_.flush(owners[0], 0)
            sys_.run_ops([f])
        truth = sys_.mem.peek_block(0).values
        for p in range(8):
            line = sys_.dirs[p].lookup(0)
            if line is not None and line.state is S.VALID:
                assert line.data.values == truth

    def test_sequential_values_observed_monotonically(self):
        sys_ = CacheSystem(4)
        for v in (1, 2, 3):
            w = sys_.store(v % 4, 0, {0: v})
            sys_.run_ops([w])
        r = sys_.load(0, 0)
        sys_.run_ops([r])
        assert r.result.values[0] == 3


class TestAccessControlTable52:
    def test_writeback_never_aborts(self):
        sys_ = CacheSystem(4)
        w = sys_.store(0, 3, {0: 1})
        sys_.run_ops([w])
        wb = sys_.flush(0, 3)
        # Race it against reads and read-invalidates.
        r1 = sys_.load(1, 3)
        w2 = sys_.store(2, 3, {0: 2})
        sys_.run_ops([wb, r1, w2])
        assert wb.retries == 0
        sys_.check_coherence_invariant()

    def test_reads_retry_against_read_invalidate(self):
        sys_ = CacheSystem(8)
        ri = sys_.store(0, 3, {0: 1})
        reads = [sys_.load(p, 3) for p in range(1, 8)]
        sys_.run_ops([ri] + reads)
        sys_.check_coherence_invariant()
        # Every read either saw the pre-write or the post-write block — but
        # consistently (single version).
        for r in reads:
            assert r.result.is_single_version()

"""Tests for synchronization operations on the cache protocol (§5.3.1,
§5.3.3, Fig 5.5)."""

import pytest

from repro.cache.protocol import CacheSystem
from repro.cache.state import CacheLineState as S
from repro.cache.sync_ops import (
    MultipleTestAndSet,
    ReadModifyWrite,
    atomic_swap,
    fetch_and_add,
    multiple_clear,
    multiple_test_and_set,
)
from repro.core.block import Block


class TestReadModifyWrite:
    def test_rmw_publishes_and_releases(self):
        sys_ = CacheSystem(4)
        sys_.mem.poke_block(0, Block.of_values([10] * 4))
        rmw = ReadModifyWrite(
            sys_, 0, 0, lambda old: {0: old[0].value + 5}
        ).start()
        sys_.run_until(lambda: rmw.done)
        assert rmw.old_block.values[0] == 10
        assert sys_.mem.peek_block(0).values[0] == 15
        # Released: line is VALID (clean) after the flush.
        assert sys_.dirs[0].state_of(0) is S.VALID

    def test_concurrent_fetch_and_add_is_atomic(self):
        sys_ = CacheSystem(8)
        sys_.mem.poke_block(0, Block.zeros(8))
        ops = [fetch_and_add(sys_, p, 0, 1) for p in range(8)]
        sys_.run_until(lambda: all(o.done for o in ops))
        assert sys_.mem.peek_block(0).values[0] == 8
        assert sorted(o.old_block.values[0] for o in ops) == list(range(8))
        sys_.check_coherence_invariant()

    def test_swap_exchanges(self):
        sys_ = CacheSystem(4)
        sys_.mem.poke_block(0, Block.of_values([3] * 4))
        s = atomic_swap(sys_, 1, 0, [9, 9, 9, 9])
        sys_.run_until(lambda: s.done)
        assert s.old_block.values == [3] * 4
        assert sys_.mem.peek_block(0).values == [9] * 4

    def test_wb_disabled_blocks_remote_triggering(self):
        """§5.3.1: remotely triggered write-back is disabled while a sync
        op owns the block — the remote reader just keeps retrying."""
        sys_ = CacheSystem(4)
        slow_phase = []

        def modify(old):
            slow_phase.append(sys_.slot)
            return {0: 1}

        rmw = ReadModifyWrite(sys_, 0, 0, modify).start()
        r = sys_.load(2, 0)
        sys_.run_until(lambda: rmw.done and r.done)
        assert r.result.values[0] in (0, 1)
        sys_.check_coherence_invariant()


class TestMultipleTestAndSet:
    def test_fig_5_5_first_lock_succeeds(self):
        sys_ = CacheSystem(8)
        sys_.mem.poke_block(0, Block.of_values([0, 1, 0, 1, 0, 1, 1, 0]))
        op = multiple_test_and_set(sys_, 0, 0, [1, 0, 1, 0, 0, 0, 0, 1])
        sys_.run_until(lambda: op.done)
        assert op.failed is False
        assert op.new_bits == [1, 1, 1, 1, 0, 1, 1, 1]
        got = [1 if w.value else 0 for w in sys_.mem.peek_block(0).words]
        assert got == [1, 1, 1, 1, 0, 1, 1, 1]

    def test_fig_5_5_second_lock_fails_unchanged(self):
        sys_ = CacheSystem(8)
        sys_.mem.poke_block(0, Block.of_values([1, 1, 1, 1, 0, 1, 1, 1]))
        op = multiple_test_and_set(sys_, 1, 0, [0, 0, 0, 0, 1, 0, 0, 1])
        sys_.run_until(lambda: op.done)
        assert op.failed is True
        got = [1 if w.value else 0 for w in sys_.mem.peek_block(0).words]
        assert got == [1, 1, 1, 1, 0, 1, 1, 1]  # nothing changed

    def test_fig_5_5_unlock_releases_only_own_bits(self):
        sys_ = CacheSystem(8)
        sys_.mem.poke_block(0, Block.of_values([1, 1, 1, 1, 0, 1, 1, 1]))
        op = multiple_clear(sys_, 0, 0, [1, 0, 1, 0, 0, 0, 0, 1])
        sys_.run_until(lambda: op.done)
        assert op.failed is False
        got = [1 if w.value else 0 for w in sys_.mem.peek_block(0).words]
        assert got == [0, 1, 0, 1, 0, 1, 1, 0]  # back to the initial state

    def test_all_or_nothing_under_contention(self):
        """Competing overlapping patterns: for each pair either their bits
        are disjoint or their critical updates serialized."""
        sys_ = CacheSystem(8)
        sys_.mem.poke_block(0, Block.zeros(8))
        pat_a = [1, 1, 0, 0, 0, 0, 0, 0]
        pat_b = [0, 1, 1, 0, 0, 0, 0, 0]
        a = multiple_test_and_set(sys_, 0, 0, pat_a)
        b = multiple_test_and_set(sys_, 4, 0, pat_b)
        sys_.run_until(lambda: a.done and b.done)
        # Overlapping on bit 1: at most one can have succeeded.
        assert [a.failed, b.failed].count(False) <= 1
        bits = [1 if w.value else 0 for w in sys_.mem.peek_block(0).words]
        winners = [op for op in (a, b) if op.failed is False]
        expected = [0] * 8
        for op in winners:
            expected = [e | p for e, p in zip(expected, op.pattern)]
        assert bits == expected

    def test_disjoint_patterns_both_succeed(self):
        sys_ = CacheSystem(8)
        sys_.mem.poke_block(0, Block.zeros(8))
        a = multiple_test_and_set(sys_, 0, 0, [1, 1, 0, 0, 0, 0, 0, 0])
        b = multiple_test_and_set(sys_, 4, 0, [0, 0, 0, 0, 1, 1, 0, 0])
        sys_.run_until(lambda: a.done and b.done)
        assert a.failed is False and b.failed is False

    def test_pattern_validation(self):
        sys_ = CacheSystem(4)
        with pytest.raises(ValueError):
            MultipleTestAndSet(sys_, 0, 0, [1, 0])  # wrong width
        with pytest.raises(ValueError):
            MultipleTestAndSet(sys_, 0, 0, [1, 0, 2, 0])  # bad bit

"""Tests for resource binding on the CFM cache protocol (§6.5.1)."""

import pytest

from repro.binding.cfm_backend import (
    BindStep,
    CFMBindingSystem,
    region_to_pattern,
)
from repro.binding.region import Region


class TestRegionToPattern:
    def test_contiguous_region(self):
        pat = region_to_pattern(Region("a")[2:5], 8)
        assert pat == [0, 0, 1, 1, 1, 0, 0, 0]

    def test_strided_region(self):
        pat = region_to_pattern(Region("a")[0:8:4], 8)
        assert pat == [1, 0, 0, 0, 1, 0, 0, 0]

    def test_elems_per_component(self):
        # Elements 4..7 with 4 elements per component → component 1 only.
        pat = region_to_pattern(Region("a")[4:8], 4, elems_per_component=4)
        assert pat == [0, 1, 0, 0]

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            region_to_pattern(Region("a")[0:20], 8)

    def test_empty_coverage_rejected(self):
        with pytest.raises(ValueError):
            region_to_pattern(Region("a"), 8)


class TestCFMBindingSystem:
    def test_single_client_completes(self):
        sys_ = CFMBindingSystem(4)
        sys_.add_program(0, [BindStep((1, 1, 0, 0), work_cycles=3)])
        recs = sys_.run()
        assert len(recs) == 1
        assert recs[0].attempts == 1  # uncontended: first TAS wins

    def test_overlapping_binds_exclude(self):
        sys_ = CFMBindingSystem(8)
        a = tuple([1, 1, 0, 0, 0, 0, 0, 0])
        b = tuple([0, 1, 1, 0, 0, 0, 0, 0])
        sys_.add_program(0, [BindStep(a, 6)])
        sys_.add_program(4, [BindStep(b, 6)])
        recs = sys_.run()
        assert len(recs) == 2
        assert sys_.exclusion_held()
        sys_.cache.check_coherence_invariant()

    def test_disjoint_binds_overlap_in_time(self):
        sys_ = CFMBindingSystem(8)
        sys_.add_program(0, [BindStep(tuple([1, 1, 0, 0, 0, 0, 0, 0]), 40)])
        sys_.add_program(4, [BindStep(tuple([0, 0, 0, 0, 1, 1, 0, 0]), 40)])
        recs = sys_.run()
        a, b = sorted(recs, key=lambda r: r.acquired_slot)
        assert b.acquired_slot < a.released_slot

    def test_lock_bits_clean_after_run(self):
        sys_ = CFMBindingSystem(8)
        for p in range(0, 8, 2):
            pat = [0] * 8
            pat[p] = pat[(p + 1) % 8] = 1
            sys_.add_program(p, [BindStep(tuple(pat), 4)] * 2)
        sys_.run()
        final = sys_.cache.mem.peek_block(0).values
        assert all(v == 0 for v in final)  # every unlock released its bits

    def test_dining_philosophers_on_the_cfm(self):
        """Chapter 6's paradigm on Chapter 5's hardware, end to end."""
        n = 8  # 8 processors, 8 chopstick components
        sys_ = CFMBindingSystem(n)
        for i in range(n // 2):  # 4 philosophers on an 8-bank machine
            left, right = 2 * i, (2 * i + 2) % n
            pat = [0] * n
            pat[left] = pat[right] = 1
            sys_.add_program(2 * i, [BindStep(tuple(pat), 5)] * 2)
        recs = sys_.run()
        assert len(recs) == 8  # every philosopher ate twice
        assert sys_.exclusion_held()
        sys_.cache.check_coherence_invariant()

    def test_region_program_compiles_and_runs(self):
        sys_ = CFMBindingSystem(4)
        sys_.add_region_program(0, [Region("a")[0:2]], work_cycles=3)
        sys_.add_region_program(2, [Region("a")[1:3]], work_cycles=3)
        recs = sys_.run()
        assert len(recs) == 2
        assert sys_.exclusion_held()

    def test_pattern_width_validated(self):
        sys_ = CFMBindingSystem(4)
        with pytest.raises(ValueError):
            sys_.add_program(0, [BindStep((1, 0))])

    def test_waits_bounded_under_contention(self):
        sys_ = CFMBindingSystem(8)
        shared = tuple([1, 1, 1, 1, 0, 0, 0, 0])
        for p in (0, 2, 4, 6):
            sys_.add_program(p, [BindStep(shared, 5)])
        recs = sys_.run()
        assert len(recs) == 4
        assert sys_.exclusion_held()

"""Tests for the combining-network baseline (§2.1.1)."""

import pytest

from repro.memory.combining import (
    CombiningOmegaNetwork,
    FetchAddRequest,
    no_combining_accesses,
    same_location_batch,
    same_module_different_offsets,
)


class TestCombining:
    def test_same_location_batch_fully_combines(self):
        """The best case: n same-address fetch-and-adds → 1 memory access."""
        net = CombiningOmegaNetwork(8)
        res = net.push_batch(same_location_batch(8))
        assert res.memory_accesses == 1
        assert res.combinations == 7
        assert res.hot_serialization == 1

    def test_increments_are_preserved(self):
        net = CombiningOmegaNetwork(8)
        reqs = [FetchAddRequest(i, 0, 0, increment=i + 1) for i in range(8)]
        res = net.push_batch(reqs)
        assert res.memory_accesses == 1  # sum is carried, not checked here

    def test_different_offsets_do_not_combine(self):
        """§2.1.1's critique: 'there may be accesses to different locations
        in the same memory module' — combining can't touch them."""
        net = CombiningOmegaNetwork(8)
        res = net.push_batch(same_module_different_offsets(8))
        assert res.memory_accesses == 8
        assert res.combinations == 0
        assert res.hot_serialization == 8  # the module serializes everything

    def test_mixed_batch_partial_combining(self):
        net = CombiningOmegaNetwork(8)
        reqs = same_location_batch(4) + [
            FetchAddRequest(src=4 + i, module=0, offset=100 + i)
            for i in range(4)
        ]
        res = net.push_batch(reqs)
        assert 1 < res.memory_accesses < 8
        assert res.combining_ratio < 1.0

    def test_disjoint_modules_no_combining_needed(self):
        net = CombiningOmegaNetwork(8)
        reqs = [FetchAddRequest(i, i, 0) for i in range(8)]
        res = net.push_batch(reqs)
        assert res.memory_accesses == 8
        assert res.hot_serialization == 1  # perfectly spread

    def test_no_combining_baseline(self):
        res = no_combining_accesses(same_location_batch(8))
        assert res.memory_accesses == 8
        assert res.hot_serialization == 8

    def test_module_range_checked(self):
        net = CombiningOmegaNetwork(8)
        with pytest.raises(ValueError):
            net.push_batch([FetchAddRequest(0, 8, 0)])

    def test_cfm_contrast(self):
        """On the CFM the same barrier counter needs one block-atomic op
        per processor but *zero* network contention — and different-offset
        traffic is conflict-free too, which combining cannot offer."""
        net = CombiningOmegaNetwork(8)
        bad_case = net.push_batch(same_module_different_offsets(8))
        # Combining leaves the worst case fully serialized...
        assert bad_case.hot_serialization == 8
        # ...while the CFM serves 8 different offsets of one module in
        # 8 conflict-free pipelined block accesses (demonstrated throughout
        # tests/test_core_cfm.py); nothing to assert here beyond the contrast.

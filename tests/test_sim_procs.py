"""Tests for the cooperative process scheduler."""

import pytest

from repro.sim.procs import Delay, Halt, Scheduler, SchedulerDeadlock, Syscall


def test_processes_run_round_robin():
    sched = Scheduler()
    out = []

    def worker(tag):
        for i in range(3):
            out.append((tag, i))
            yield Delay(1)

    sched.spawn(worker("a"), "a")
    sched.spawn(worker("b"), "b")
    sched.run()
    assert out == [("a", 0), ("b", 0), ("a", 1), ("b", 1), ("a", 2), ("b", 2)]


def test_delay_skips_cycles():
    sched = Scheduler()
    seen = []

    def sleeper():
        seen.append(sched.cycle)
        yield Delay(5)
        seen.append(sched.cycle)

    sched.spawn(sleeper())
    sched.run()
    assert seen == [0, 5]


def test_result_captured_on_return():
    sched = Scheduler()

    def worker():
        yield Delay(1)
        return 42

    p = sched.spawn(worker())
    sched.run()
    assert p.finished
    assert p.result == 42


def test_halt_terminates_immediately():
    sched = Scheduler()
    out = []

    def worker():
        out.append("before")
        yield Halt()
        out.append("after")  # pragma: no cover - must not run

    sched.spawn(worker())
    sched.run()
    assert out == ["before"]


def test_custom_syscall_handler_returns_value():
    class Ask(Syscall):
        pass

    sched = Scheduler()
    sched.handle(Ask, lambda s, p, c: "answer")
    got = []

    def worker():
        got.append((yield Ask()))

    sched.spawn(worker())
    sched.run()
    assert got == ["answer"]


def test_blocking_and_unblock_delivers_value():
    class Wait(Syscall):
        pass

    sched = Scheduler()
    waiting = []
    sched.handle(Wait, lambda s, p, c: (waiting.append(p), s.block(p))[1])
    got = []

    def waiter():
        got.append((yield Wait()))

    def waker():
        yield Delay(3)
        sched.unblock(waiting[0], "wake-value")

    sched.spawn(waiter())
    sched.spawn(waker())
    sched.run()
    assert got == ["wake-value"]


def test_deadlock_detected_when_all_blocked():
    class Never(Syscall):
        pass

    sched = Scheduler()
    sched.handle(Never, lambda s, p, c: s.block(p))

    def stuck():
        yield Never()

    sched.spawn(stuck(), "stuck")
    with pytest.raises(SchedulerDeadlock) as exc:
        sched.run()
    assert "stuck" in str(exc.value)


def test_unhandled_syscall_type_raises():
    class Unknown(Syscall):
        pass

    sched = Scheduler()

    def worker():
        yield Unknown()

    sched.spawn(worker())
    with pytest.raises(TypeError):
        sched.run()


def test_non_syscall_yield_rejected():
    sched = Scheduler()

    def worker():
        yield 42

    sched.spawn(worker())
    with pytest.raises(TypeError):
        sched.run()


def test_max_cycle_overrun_raises():
    sched = Scheduler()

    def forever():
        while True:
            yield Delay(1)

    sched.spawn(forever())
    with pytest.raises(RuntimeError):
        sched.run(max_cycles=50)


def test_unblock_finished_process_rejected():
    sched = Scheduler()

    def quick():
        return
        yield  # pragma: no cover

    p = sched.spawn(quick())
    sched.run()
    with pytest.raises(ValueError):
        sched.unblock(p)


def test_spawned_during_run_participates():
    sched = Scheduler()
    out = []

    def child():
        out.append("child")
        yield Delay(1)

    def parent():
        yield Delay(1)
        sched.spawn(child())
        yield Delay(1)

    sched.spawn(parent())
    sched.run()
    assert out == ["child"]

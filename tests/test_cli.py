"""Tests for the command-line interface."""

import pytest

from repro.cli import FIGURES, TABLES, main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "3.3" in out and "5.5" in out and "3.14" in out

    @pytest.mark.parametrize("tid", sorted(TABLES))
    def test_every_table_renders(self, tid, capsys):
        assert main(["table", tid]) == 0
        out = capsys.readouterr().out
        assert f"Table {tid}" in out
        assert len(out.splitlines()) > 3

    @pytest.mark.parametrize("fid", ["3.13", "3.14", "3.15", "4.1", "5.5"])
    def test_figures_render(self, fid, capsys):
        assert main(["figure", fid]) == 0
        out = capsys.readouterr().out
        assert f"Fig {fid}" in out

    def test_table_5_5_values(self, capsys):
        main(["table", "5.5"])
        out = capsys.readouterr().out
        assert "9" in out and "27" in out and "63" in out

    def test_unknown_id_rejected(self):
        with pytest.raises(SystemExit):
            main(["table", "9.9"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            main([])


class TestVerify:
    def test_verify_reports_full_reproduction(self, capsys):
        from repro.cli import verify

        assert verify() == 0
        out = capsys.readouterr().out
        assert "8/8 deterministic artifacts match the paper" in out
        assert "FAIL" not in out

    def test_verify_via_main(self, capsys):
        assert main(["verify"]) == 0

"""Tests for the command-line interface."""

import pytest

from repro.cli import FIGURES, TABLES, main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "3.3" in out and "5.5" in out and "3.14" in out

    @pytest.mark.parametrize("tid", sorted(TABLES))
    def test_every_table_renders(self, tid, capsys):
        assert main(["table", tid]) == 0
        out = capsys.readouterr().out
        assert f"Table {tid}" in out
        assert len(out.splitlines()) > 3

    @pytest.mark.parametrize("fid", ["3.13", "3.14", "3.15", "4.1", "5.5"])
    def test_figures_render(self, fid, capsys):
        assert main(["figure", fid]) == 0
        out = capsys.readouterr().out
        assert f"Fig {fid}" in out

    def test_table_5_5_values(self, capsys):
        main(["table", "5.5"])
        out = capsys.readouterr().out
        assert "9" in out and "27" in out and "63" in out

    def test_unknown_table_id_exits_nonzero_with_valid_ids(self, capsys):
        assert main(["table", "9.9"]) == 2
        err = capsys.readouterr().err
        assert "unknown table id '9.9'" in err
        for tid in sorted(TABLES):
            assert tid in err

    def test_unknown_figure_id_exits_nonzero_with_valid_ids(self, capsys):
        assert main(["figure", "9.9"]) == 2
        err = capsys.readouterr().err
        assert "unknown figure id '9.9'" in err
        for fid in sorted(FIGURES):
            assert fid in err

    def test_unknown_ids_never_traceback(self, capsys):
        # The audit contract: bad IDs are reported, not raised.
        for cmd in ("table", "figure"):
            assert main([cmd, "nope"]) == 2

    def test_command_required(self):
        with pytest.raises(SystemExit):
            main([])

    def test_list_includes_benchmarks(self, capsys):
        assert main(["list"]) == 0
        assert "benchmarks:" in capsys.readouterr().out


class TestBenchCommand:
    def test_bench_list(self, capsys):
        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        assert "quick" in out and "cfm" in out

    def test_unknown_bench_exits_nonzero_with_valid_names(self, capsys):
        assert main(["bench", "nope"]) == 2
        err = capsys.readouterr().err
        assert "unknown bench id 'nope'" in err
        assert "quick" in err

    def test_bench_quick_writes_well_formed_json(self, tmp_path, capsys):
        import json

        assert main(["bench", "--quick", "--out", str(tmp_path)]) == 0
        path = tmp_path / "BENCH_quick.json"
        assert path.exists()
        doc = json.loads(path.read_text())
        assert doc["bench"] == "quick"
        assert doc["schema"] == "repro-bench/1"
        systems = {r["system"] for r in doc["runs"]}
        assert {"cfm", "interleaved"} <= systems
        for run in doc["runs"]:
            assert run["throughput"] > 0
            assert run["latency"]["p50"] is not None
            assert run["latency"]["p99"] >= run["latency"]["p50"]
            assert "retries" in run and "conflicts" in run
            if run["params"].get("engine"):
                # Engine-driven runs are unobserved by design (observers
                # would break the vectorized/stacked proof): the key is
                # present but carries no per-resource samples.
                assert run["utilization"] == {}
            else:
                assert run["utilization"], "per-resource utilization missing"
        cfm = next(r for r in doc["runs"] if r["system"] == "cfm")
        banks = [k for k in cfm["utilization"] if k.startswith("cfm.bank[")]
        assert len(banks) == cfm["params"]["n_banks"]
        assert cfm["conflicts"] == 0


class TestVerify:
    def test_verify_reports_full_reproduction(self, capsys):
        from repro.cli import verify

        assert verify() == 0
        out = capsys.readouterr().out
        assert "8/8 deterministic artifacts match the paper" in out
        assert "FAIL" not in out

    def test_verify_via_main(self, capsys):
        assert main(["verify"]) == 0

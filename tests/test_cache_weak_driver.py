"""Tests for weak consistency on the live protocol (§5.3.1)."""

import pytest

from repro.cache.protocol import CacheSystem
from repro.cache.state import CacheLineState as S
from repro.cache.weak_driver import (
    ConsistencyDriver,
    Discipline,
    OpKind,
    ProgramOp,
    compare_disciplines,
    store_burst_program,
)


class TestDriver:
    def test_weak_leaves_stores_dirty(self):
        """Condition 1/2: ownership + local modification counts as
        performed — no flush before the sync."""
        sys_ = CacheSystem(4)
        drv = ConsistencyDriver(sys_, 0)
        res = drv.run(store_burst_program(4), Discipline.WEAK)
        assert res.writebacks_at_sync == 0
        # The stored blocks are still dirty in the cache afterwards.
        assert len(sys_.dirs[0].dirty_offsets()) >= 3

    def test_strict_flushes_every_store(self):
        sys_ = CacheSystem(4)
        drv = ConsistencyDriver(sys_, 0)
        res = drv.run(store_burst_program(4), Discipline.STRICT)
        assert res.writebacks_at_sync == 4
        # Everything published: no dirty ordinary blocks remain.
        dirty = set(sys_.dirs[0].dirty_offsets())
        assert dirty <= {63}  # only the sync block may be owned

    def test_weak_faster_and_cheaper(self):
        """The §2.2.3 payoff measured on the real machine."""
        weak, strict = compare_disciplines(n_stores=8)
        assert weak.cycles < strict.cycles
        assert weak.memory_ops < strict.memory_ops

    def test_gain_grows_with_burst_length(self):
        w4, s4 = compare_disciplines(n_stores=4)
        w12, s12 = compare_disciplines(n_stores=12)
        assert (s12.cycles - w12.cycles) > (s4.cycles - w4.cycles)

    def test_sync_is_globally_visible_under_weak(self):
        """The sync itself always publishes (RMW ends in a write-back)."""
        sys_ = CacheSystem(4)
        drv = ConsistencyDriver(sys_, 0)
        drv.run([ProgramOp(OpKind.SYNC, 7)], Discipline.WEAK)
        assert sys_.mem.peek_block(7).values[0] == 1
        assert sys_.dirs[0].state_of(7) is S.VALID

    def test_loads_work_in_programs(self):
        sys_ = CacheSystem(4)
        drv = ConsistencyDriver(sys_, 0)
        res = drv.run(
            [ProgramOp(OpKind.LOAD, 1), ProgramOp(OpKind.STORE, 1),
             ProgramOp(OpKind.LOAD, 1)],
            Discipline.WEAK,
        )
        assert res.cycles > 0

    def test_invalid_burst(self):
        with pytest.raises(ValueError):
            store_burst_program(0)

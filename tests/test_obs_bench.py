"""Tests for the unified bench harness and the instrumentation wiring.

The two load-bearing properties:

* **Determinism** — attaching probes/metrics observes a simulation but
  never steers it: every number comes out identical with and without.
* **Zero-cost off** — with observability off (the default), components
  keep no instruments and emit nothing; the hot loop pays only an
  ``is None`` check.
"""

import json

import pytest

from repro.core.cfm import AccessKind, AccessState, CFMemory
from repro.core.config import CFMConfig
from repro.memory.interleaved import ConventionalMemorySimulator
from repro.obs import MetricsRegistry, RecordingProbe
from repro.obs.bench import BENCHMARKS, run_benchmark, write_benchmark


def _full_load_cfm(n_procs=4, bank_cycle=2, cycles=200, probe=None,
                   metrics=None):
    cfg = CFMConfig(n_procs=n_procs, bank_cycle=bank_cycle)
    mem = CFMemory(cfg, probe=probe, metrics=metrics)
    latencies = []
    outstanding = [False] * n_procs

    def finished(acc):
        outstanding[acc.proc] = False
        if acc.state is AccessState.COMPLETED:
            latencies.append(acc.latency)

    for _ in range(cycles):
        for p in range(n_procs):
            if not outstanding[p]:
                mem.issue(p, AccessKind.READ, offset=0, on_finish=finished)
                outstanding[p] = True
        mem.tick()
    return mem, latencies


class TestDeterminism:
    def test_cfm_results_identical_with_probes_enabled(self):
        _, plain = _full_load_cfm()
        probe = RecordingProbe()
        metrics = MetricsRegistry()
        _, probed = _full_load_cfm(probe=probe, metrics=metrics)
        assert probed == plain
        assert len(probe) > 0  # the probe did observe the run

    def test_interleaved_summary_identical_with_metrics_enabled(self):
        base = ConventionalMemorySimulator(8, 8, rate=0.04, beta=17, seed=3)
        plain = base.run(3_000)
        instrumented = ConventionalMemorySimulator(
            8, 8, rate=0.04, beta=17, seed=3,
            probe=RecordingProbe(), metrics=MetricsRegistry(),
        )
        probed = instrumented.run(3_000)
        assert probed.completed == plain.completed
        assert probed.retries == plain.retries
        assert probed.conflicts == plain.conflicts
        assert probed.latencies.items() == plain.latencies.items()

    def test_cache_system_identical_with_probes_enabled(self):
        from repro.cache.protocol import CacheSystem

        def run(probe=None, metrics=None):
            sys_ = CacheSystem(4, probe=probe, metrics=metrics)
            ops = []
            for p in range(4):
                ops.append(sys_.load(p, 0))
                ops.append(sys_.store(p, 1, {0: p + 1}))
            sys_.run_ops(ops)
            return [(op.proc, op.kind.value, op.latency) for op in ops]

        assert run(RecordingProbe(), MetricsRegistry()) == run()


class TestZeroCostOff:
    def test_no_instruments_kept_when_metrics_absent(self):
        mem, _ = _full_load_cfm()
        assert mem.metrics is None and mem.probe is None
        assert not hasattr(mem, "_bank_util")

    def test_sim_keeps_no_instruments_when_off(self):
        sim = ConventionalMemorySimulator(4, 4, rate=0.1, beta=9, seed=0)
        sim.run(500)
        assert not hasattr(sim, "_module_util")


class TestInstrumentation:
    def test_cfm_full_load_has_unit_bank_utilization(self):
        metrics = MetricsRegistry()
        mem, latencies = _full_load_cfm(n_procs=8, bank_cycle=2, cycles=160,
                                        metrics=metrics)
        beta = mem.cfg.block_access_time
        assert set(latencies) == {beta}
        fractions = metrics.fractions("cfm.bank")
        assert len(fractions) == mem.cfg.n_banks
        # Full load: every bank busy every slot once past the warmup
        # (a bank's first address may come up to c-1 slots in) — the
        # paper's 100%-utilization claim.
        warmup = (mem.cfg.bank_cycle - 1) / 160
        assert all(f >= 1.0 - warmup for f in fractions.values())
        assert max(fractions.values()) == 1.0

    def test_cfm_probe_event_stream_is_consistent(self):
        probe = RecordingProbe()
        _, latencies = _full_load_cfm(probe=probe, cycles=100)
        issues = probe.select("cfm", "issue")
        completes = probe.select("cfm", "complete")
        assert len(completes) == len(latencies)
        assert len(issues) >= len(completes)
        for ev in completes:
            assert ev.fields["latency"] == latencies[0]

    def test_interleaved_module_utilization_tracked(self):
        metrics = MetricsRegistry()
        sim = ConventionalMemorySimulator(8, 8, rate=0.05, beta=17, seed=1,
                                          metrics=metrics)
        summary = sim.run(4_000)
        assert summary.completed > 0
        fractions = metrics.fractions("mem.module")
        assert len(fractions) == 8
        assert all(0.0 <= f <= 1.0 for f in fractions.values())
        assert any(f > 0.0 for f in fractions.values())
        # Denominator is the full run for every module.
        for m in range(8):
            assert metrics.get(f"mem.module[{m}].util").total == 4_000

    def test_sync_omega_switch_utilization(self):
        from repro.network.synchronous import SynchronousOmegaNetwork

        metrics = MetricsRegistry()
        net = SynchronousOmegaNetwork(8, metrics=metrics)
        for slot in range(8):
            net.route({i: f"p{i}" for i in range(8)}, slot)
        fractions = metrics.fractions("net.omega")
        # Full permutation uses every switch of every stage, every slot.
        assert len(fractions) == net.net.n_stages * net.net.switches_per_stage
        assert all(f == 1.0 for f in fractions.values())

    def test_crossbar_counters_and_utilization(self):
        from repro.network.crossbar import ArbitratedCrossbar

        metrics = MetricsRegistry()
        xbar = ArbitratedCrossbar(4, metrics=metrics)
        granted = xbar.arbitrate([(0, 2), (1, 2), (3, 0)])
        assert len(granted) == 2
        counters = metrics.counter("net.xbar")
        assert counters["granted"] == 2 and counters["rejected"] == 1
        assert metrics.get("net.xbar.out[2].util").fraction == 1.0
        assert metrics.get("net.xbar.out[1].util").fraction == 0.0


class TestBenchHarness:
    def test_registry_names(self):
        assert {"quick", "cfm", "interleaved", "partial", "network",
                "cache"} <= set(BENCHMARKS)

    def test_unknown_benchmark_raises_with_valid_names(self):
        with pytest.raises(KeyError, match="quick"):
            run_benchmark("nope")

    def test_quick_doc_schema(self):
        doc = run_benchmark("quick")
        assert doc["schema"] == "repro-bench/1"
        assert doc["quick"] is True
        systems = [r["system"] for r in doc["runs"]]
        assert "cfm" in systems and "interleaved" in systems
        for run in doc["runs"]:
            for key in ("params", "cycles", "completed", "retries",
                        "conflicts", "throughput", "latency", "utilization",
                        "metrics"):
                assert key in run, f"{run['system']} missing {key}"
        cfm = next(r for r in doc["runs"] if r["system"] == "cfm")
        assert cfm["conflicts"] == 0 and cfm["retries"] == 0
        assert cfm["latency"]["p50"] == cfm["params"]["beta"]
        interleaved = next(r for r in doc["runs"]
                           if r["system"] == "interleaved")
        assert interleaved["conflicts"] > 0  # the baseline pays for banks

    def test_write_benchmark_emits_json_file(self, tmp_path):
        path = write_benchmark("quick", out_dir=tmp_path, quick=True)
        assert path.name == "BENCH_quick.json"
        doc = json.loads(path.read_text())
        assert doc["bench"] == "quick"
        assert doc["runs"]

    def test_quick_benchmark_is_deterministic(self):
        a = run_benchmark("quick")
        b = run_benchmark("quick")
        assert a == b

"""Tests for synchronous omega networks (§3.2.1, Fig 3.8, Table 3.4)."""

import pytest

from repro.network.synchronous import SynchronousOmegaNetwork

# Table 3.4 verbatim: states[slot][column][switch], 0 straight / 1 interchange.
TABLE_3_4 = [
    [[0, 0, 0, 0], [0, 0, 0, 0], [0, 0, 0, 0]],
    [[0, 0, 0, 1], [0, 0, 1, 1], [1, 1, 1, 1]],
    [[0, 0, 1, 1], [1, 1, 1, 1], [0, 0, 0, 0]],
    [[0, 1, 1, 1], [1, 1, 0, 0], [1, 1, 1, 1]],
    [[1, 1, 1, 1], [0, 0, 0, 0], [0, 0, 0, 0]],
    [[1, 1, 1, 0], [0, 0, 1, 1], [1, 1, 1, 1]],
    [[1, 1, 0, 0], [1, 1, 1, 1], [0, 0, 0, 0]],
    [[1, 0, 0, 0], [1, 1, 0, 0], [1, 1, 1, 1]],
]


class TestTable34:
    def test_reproduces_table_3_4_exactly(self):
        net = SynchronousOmegaNetwork(8)
        assert net.state_table() == TABLE_3_4

    def test_states_periodic_in_n(self):
        net = SynchronousOmegaNetwork(8)
        assert net.switch_states(3) == net.switch_states(11)

    def test_slot_zero_is_identity(self):
        net = SynchronousOmegaNetwork(8)
        assert all(s == 0 for col in net.switch_states(0) for s in col)


class TestConnections:
    @pytest.mark.parametrize("n", [2, 4, 8, 16, 32])
    def test_every_slot_realizable_conflict_free(self, n):
        assert SynchronousOmegaNetwork(n).verify_period()

    def test_target_mapping(self):
        net = SynchronousOmegaNetwork(8)
        assert net.target(3, 0) == 3
        assert net.target(3, 6) == 1
        assert net.permutation(1) == [1, 2, 3, 4, 5, 6, 7, 0]

    def test_route_moves_payloads(self):
        net = SynchronousOmegaNetwork(8)
        out = net.route({0: "x", 5: "y"}, slot=4)
        assert out == {4: "x", 1: "y"}

    def test_route_full_load_no_collision(self):
        net = SynchronousOmegaNetwork(8)
        for t in range(8):
            out = net.route({i: i for i in range(8)}, t)
            assert sorted(out.keys()) == list(range(8))

    def test_no_setup_delay(self):
        """The headline §3.4.3 claim: clock-driven switches need no setup."""
        assert SynchronousOmegaNetwork(8).setup_delay() == 0

    def test_target_out_of_range(self):
        with pytest.raises(ValueError):
            SynchronousOmegaNetwork(8).target(8, 0)


class TestEquivalenceWithSwitchBox:
    def test_behaves_like_single_synchronous_switch(self):
        """§3.2.1's goal: the network supports block accesses 'just as an
        ordinary 8×8 synchronous switch does'."""
        from repro.core.switch import SynchronousSwitchBox

        box = SynchronousSwitchBox(8)
        net = SynchronousOmegaNetwork(8)
        for t in range(8):
            assert [net.target(i, t) for i in range(8)] == [
                box.output_for(i, t) for i in range(8)
            ]

"""Differential tests: ring-queue ATT vs the associative-scan reference.

The tracking layer's stage-2 fastpath replaces the per-slot associative
scans of :class:`AddressTrackingTable` with per-bank ring queues keyed by
arrival slot.  :class:`AssociativeScanATT` keeps the old flat-list scan
verbatim; these tests drive both through identical workloads — raw table
sequences, driver-managed read/write/swap races, and full spin-lock
contention — and assert every observable identical: lookup results, grant
orders, atomic-swap outcomes, lock acquisition sequences, and controller
counters, across (b, c) in {(4,1), (8,2), (16,4), (32,8)}.
"""

import random

import pytest

from repro.core.block import Block
from repro.core.cfm import AccessKind, CFMemory
from repro.core.config import CFMConfig
from repro.sim.engine import SlotClock
from repro.tracking.access_control import (
    AddressTrackingController,
    PriorityMode,
)
from repro.tracking.att import AddressTrackingTable, AssociativeScanATT
from repro.tracking.atomic import (
    CFMDriver,
    OpStatus,
    ReadOperation,
    SwapOperation,
    WriteOperation,
)
from repro.tracking.locks import SpinLockSystem

SHAPES = [(4, 1), (8, 2), (16, 4), (32, 8)]


# --------------------------------------------------------------------------
# Raw table equivalence


def _table_trace(att_cls, events, capacity):
    """Apply an event script to a fresh table; return every observable."""
    att = att_cls(capacity)
    out = []
    for ev in events:
        if ev[0] == "insert":
            _, offset, op_id, kind, slot = ev
            att.insert(offset, op_id, kind, slot)
        elif ev[0] == "prune":
            att.prune(ev[1])
        elif ev[0] == "lookup":
            _, offset, slot, exclude = ev
            out.append([
                (e.offset, e.op_id, e.kind, e.insert_slot)
                for e in att.lookup(offset, slot, exclude_op=exclude)
            ])
        elif ev[0] == "has":
            _, offset, slot, exclude = ev
            out.append(att.has_entry(offset, slot, exclude_op=exclude))
        elif ev[0] == "at":
            out.append([
                (e.offset, e.op_id, e.kind, e.insert_slot)
                for e in att.entries_at(ev[1])
            ])
    return out


@pytest.mark.parametrize("capacity", [1, 3, 7, 15])
def test_ring_matches_scan_on_random_scripts(capacity):
    rng = random.Random(capacity)
    events = []
    slot = 0
    op_id = 0
    for _ in range(400):
        r = rng.random()
        slot += rng.randrange(0, 3)  # nondecreasing, like the engine
        if r < 0.4:
            events.append(("insert", rng.randrange(6), op_id,
                           AccessKind.WRITE, slot))
            op_id += 1
        elif r < 0.55:
            events.append(("prune", slot))
        elif r < 0.8:
            events.append(("lookup", rng.randrange(6), slot,
                           rng.randrange(op_id) if op_id and rng.random() < 0.5
                           else None))
        elif r < 0.9:
            events.append(("has", rng.randrange(6), slot,
                           rng.randrange(op_id) if op_id else None))
        else:
            events.append(("at", slot))
    ring = _table_trace(AddressTrackingTable, events, capacity)
    scan = _table_trace(AssociativeScanATT, events, capacity)
    assert ring == scan


def test_ring_rejects_decreasing_insert_slots():
    att = AddressTrackingTable(4)
    att.insert(0, 1, AccessKind.WRITE, 10)
    with pytest.raises(ValueError):
        att.insert(0, 2, AccessKind.WRITE, 9)


def test_next_interesting_tracks_oldest_entry():
    att = AddressTrackingTable(4)
    assert att.next_interesting(0) is None
    att.insert(0, 1, AccessKind.WRITE, 10)
    att.insert(1, 2, AccessKind.WRITE, 12)
    # The oldest entry (slot 10, capacity 4) leaves the visible window
    # after slot 14; GC before that is a no-op.
    assert att.next_interesting(11) == 15
    att.prune(15)
    assert att.next_interesting(15) == 17


# --------------------------------------------------------------------------
# Driver-level equivalence: read/write/swap races under both tables


def _drive_workload(att_cls, n_procs, bank_cycle, seed):
    cfg = CFMConfig(n_procs=n_procs, bank_cycle=bank_cycle)
    ctl = AddressTrackingController(
        cfg.n_banks, PriorityMode.FIRST_WINS, att_cls=att_cls
    )
    mem = CFMemory(cfg, controller=ctl)
    d = CFMDriver(mem)
    width = cfg.n_banks
    for off in range(4):
        mem.poke_block(off, Block.of_values([off] * width, "init"))
    rng = random.Random(seed)
    ops = []
    for round_ in range(6):
        for p in range(n_procs):
            off = rng.randrange(4)
            r = rng.random()
            tag = f"p{p}r{round_}"
            if r < 0.4:
                ops.append(ReadOperation(d, p, off).start())
            elif r < 0.7:
                ops.append(WriteOperation(
                    d, p, off, [p + round_] * width, version=tag).start())
            else:
                ops.append(SwapOperation(
                    d, p, off, [p * 10 + round_] * width, version=tag).start())
        d.run_until(lambda: all(op.done for op in ops))
    return {
        "ops": [
            (op.proc, op.offset, op.status.value, op.attempts,
             op.issue_slot, op.done_slot,
             op.result.values if isinstance(op, ReadOperation)
             and op.result is not None else None,
             op.old_block.values if isinstance(op, SwapOperation)
             and op.old_block is not None else None)
            for op in ops
        ],
        "blocks": [mem.peek_block(off).values for off in range(4)],
        "versions": [mem.peek_block(off).versions for off in range(4)],
        "counters": (ctl.aborts, ctl.restarts, ctl.retries),
        "slot": mem.slot,
    }


@pytest.mark.parametrize("n_procs,bank_cycle", SHAPES)
def test_driver_workload_identical_under_both_tables(n_procs, bank_cycle):
    ring = _drive_workload(AddressTrackingTable, n_procs, bank_cycle, seed=7)
    scan = _drive_workload(AssociativeScanATT, n_procs, bank_cycle, seed=7)
    assert ring == scan


# --------------------------------------------------------------------------
# Window-boundary pinning: GC and visibility at exact window multiples


@pytest.mark.parametrize("capacity", [3, 7, 15, 31])
def test_entry_visibility_ends_exactly_at_capacity_age(capacity):
    """The expiry edge, pinned on both tables: an entry inserted at slot s
    is visible (and prune-immune) through s+capacity, gone at s+capacity+1.
    """
    for att_cls in (AddressTrackingTable, AssociativeScanATT):
        att = att_cls(capacity)
        att.insert(0, 1, AccessKind.WRITE, 10)
        assert att.has_entry(0, 10 + capacity)
        assert not att.has_entry(0, 10 + capacity + 1)
        att.prune(10 + capacity)  # still within the window: kept
        assert len(att) == 1
        att.prune(10 + capacity + 1)  # one past: GC drops it
        assert len(att) == 0


@pytest.mark.parametrize("n_procs,bank_cycle", SHAPES)
def test_boundary_straddling_scripts_identical(n_procs, bank_cycle):
    """Ring == scan at slots straddling multiples of the ATT window.

    The suspicious zone for the ring queue's pop-from-the-left GC is the
    exact expiry edge.  Every insert, prune, and lookup in these scripts
    lands on k*window + {-1, 0, +1} — the (b, c) shapes give windows 4,
    16, 64, and 256 — and every observable must match the associative
    scan, including prunes issued one slot early and one slot late.
    """
    capacity = n_procs * bank_cycle - 1  # the m-1 window of §4.1.2
    window = capacity + 1
    events = []
    op_id = 0
    for k in range(1, 4):
        base = k * window
        for d in (-1, 0, 1):
            events.append(("insert", k % 3, op_id, AccessKind.WRITE,
                           base + d))
            op_id += 1
        for d in (-1, 0, 1):
            events.append(("lookup", k % 3, base + d, None))
            events.append(("has", k % 3, base + d, None))
        # Prune straddling the straddled inserts' expiry edge.
        for d in (-1, 0, 1):
            events.append(("prune", base + window + d))
            events.append(("lookup", k % 3, base + window + d, None))
            events.append(("at", base + window + d))
    ring = _table_trace(AddressTrackingTable, events, capacity)
    scan = _table_trace(AssociativeScanATT, events, capacity)
    assert ring == scan


# --------------------------------------------------------------------------
# Lock-system equivalence: grant order and latencies


def _lock_trace(att_cls, n_procs, bank_cycle):
    sys_ = SpinLockSystem(n_procs, bank_cycle=bank_cycle, cs_cycles=3,
                          att_cls=att_cls)
    acq = sys_.run()
    return (
        [(a.proc, a.requested_slot, a.acquired_slot, a.released_slot)
         for a in acq],
        list(sys_.unlock_latencies),
        (sys_.controller.aborts, sys_.controller.restarts,
         sys_.controller.retries),
    )


@pytest.mark.parametrize("n_procs,bank_cycle", SHAPES)
def test_lock_acquisition_sequence_identical(n_procs, bank_cycle):
    ring = _lock_trace(AddressTrackingTable, n_procs, bank_cycle)
    scan = _lock_trace(AssociativeScanATT, n_procs, bank_cycle)
    assert ring == scan
    # and the lock really was exclusive, serially granted
    assert len(ring[0]) == n_procs


# --------------------------------------------------------------------------
# The next_interesting hint: controller -> SlotClock.advance_until wiring


def test_controller_hint_leaps_idle_tracking_slots():
    ctl = AddressTrackingController(4, PriorityMode.FIRST_WINS)
    ctl.atts[0].insert(0, 1, AccessKind.WRITE, 5)
    clock = SlotClock()
    pruned_at = []

    def tick(slot):
        before = len(ctl.atts[0])
        for att in ctl.atts:
            att.prune(slot)
        if len(ctl.atts[0]) != before:
            pruned_at.append(slot)

    clock.slot = 6
    clock.subscribe(tick, next_interesting=ctl.next_interesting)
    end = clock.advance_until(40)
    # capacity is 3 (n_banks - 1): the slot-5 entry ages out after 5+3;
    # the clock must leap straight to the hinted slot, tick there, and
    # then leap to the end with nothing further scheduled.
    assert end == 40
    assert pruned_at == [9]


def test_controller_hint_none_when_tables_empty():
    ctl = AddressTrackingController(4)
    assert ctl.next_interesting(0) is None


# --------------------------------------------------------------------------
# CFMDriver deferred-heap ordering


def test_defer_heap_preserves_same_slot_insertion_order():
    mem = CFMemory(CFMConfig(n_procs=4))
    d = CFMDriver(mem)
    fired = []
    d.defer(2, lambda: fired.append("a"))
    d.defer(1, lambda: fired.append("early"))
    d.defer(2, lambda: fired.append("b"))
    d.defer(2, lambda: fired.append("c"))
    assert d.next_due() == mem.slot + 1
    d.run(3)
    assert fired == ["early", "a", "b", "c"]

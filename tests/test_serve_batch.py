"""Micro-batching contract: coalescing, per-request semantics, shutdown.

What continuous batching must preserve from PR 7's per-request dispatch
(``repro.serve.batch`` + the batch worker in ``repro.serve.pool``):

1. **Per-request results** — a batch returns one result dict per payload,
   in payload order; duplicates are served by one engine run and are
   bit-identical to running each alone;
2. **Typed faults stay per-request** — a faulted payload inside a batch
   errors alone; its batch-mates complete;
3. **Flushing is count/drain-driven** — batches never exceed
   ``max_batch``, requests of different ``(system, shape)`` keys never
   share a batch, and ``max_batch=1`` reproduces per-request dispatch;
4. **Graceful shutdown** — SIGTERM drains in-flight work, flushes final
   metrics, and exits 0 with no pool stack traces (subprocess test).
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.fastpath.engine import engine_available
from repro.serve import (
    MicroBatcher,
    ShardedWorkerPool,
    SimulationService,
    batch_key,
    serve_worker,
    serve_worker_batch,
)

CFM_PARAMS = {"n_procs": 4, "bank_cycle": 1, "cycles": 200}
DEAD_BANK_INJECT = {
    "events": [{"kind": "bank_dead", "start": 3, "duration": 1, "target": 1,
                "extra": 0}],
}


def _normalized(doc):
    return json.loads(json.dumps(doc, sort_keys=True))


def _cfm(cycles=200, **extra):
    payload = {"system": "cfm", "params": dict(CFM_PARAMS, cycles=cycles)}
    payload.update(extra)
    return payload


@pytest.fixture(scope="module")
def pool():
    with ShardedWorkerPool(n_shards=2) as p:
        yield p


# --------------------------------------------------------------------------
# Batch keys


class TestBatchKey:
    def test_groups_by_system_and_shape(self):
        assert batch_key(_cfm()) == ("cfm", (4, 1))
        assert batch_key(_cfm(cycles=999)) == ("cfm", (4, 1))
        assert batch_key({"system": "cfm",
                          "params": {"n_procs": 8, "bank_cycle": 2,
                                     "cycles": 10}}) == ("cfm", (16, 2))

    def test_shapeless_systems_group_by_system(self):
        key = batch_key({"system": "interleaved",
                         "params": {"n_procs": 8, "seed": 3}})
        assert key == ("interleaved", None)


# --------------------------------------------------------------------------
# The batch worker (in-process)


class TestServeWorkerBatch:
    def test_one_result_per_payload_in_order(self):
        payloads = [_cfm(100), _cfm(150), _cfm(200)]
        results = serve_worker_batch(payloads)
        assert len(results) == 3
        for payload, result in zip(payloads, results):
            assert result["ok"], result.get("error")
            alone = serve_worker(dict(payload))
            assert (_normalized(result["report"])
                    == _normalized(alone["report"]))

    def test_duplicates_deduped_and_bit_identical(self):
        payloads = [_cfm(100), _cfm(100), _cfm(150), _cfm(100)]
        results = serve_worker_batch(payloads)
        assert [r.get("deduped", False) for r in results] == [
            False, True, False, True]
        assert (_normalized(results[0]["report"])
                == _normalized(results[1]["report"])
                == _normalized(results[3]["report"]))
        assert (_normalized(results[1]["report"])
                == _normalized(serve_worker(_cfm(100))["report"]))

    def test_injected_payloads_are_never_deduped(self):
        faulted = _cfm(inject=dict(DEAD_BANK_INJECT, seed=0, rounds=2))
        results = serve_worker_batch([faulted, dict(faulted)])
        assert all(r["ok"] is False for r in results)
        assert all(r["error"]["type"] == "DegradedModeError" for r in results)
        assert not any(r.get("deduped") for r in results)

    def test_fault_inside_batch_is_per_request(self):
        payloads = [_cfm(100),
                    _cfm(inject=dict(DEAD_BANK_INJECT, seed=0, rounds=2)),
                    _cfm(150)]
        results = serve_worker_batch(payloads)
        assert results[0]["ok"] is True
        assert results[1]["ok"] is False and results[1]["error"]["typed"]
        assert results[2]["ok"] is True

    def test_empty_batch(self):
        assert serve_worker_batch([]) == []


# --------------------------------------------------------------------------
# Stacked execution inside a batch (stage 4)


def _stacked(cycles, n_procs=4, bank_cycle=1):
    return {"system": "cfm",
            "params": {"n_procs": n_procs, "bank_cycle": bank_cycle,
                       "cycles": cycles, "engine": "stacked"}}


class TestStackedBatch:
    pytestmark = pytest.mark.skipif(
        not engine_available("stacked", "cfm"),
        reason="stacked engine unavailable (numpy)")

    def test_stacked_flush_is_one_run_and_bit_identical(self):
        payloads = [_stacked(100), _stacked(150), _stacked(200)]
        results = serve_worker_batch(payloads)
        for payload, result in zip(payloads, results):
            assert result["ok"], result.get("error")
            assert result["stacked"] is True
            alone = serve_worker(_normalized(payload))
            assert (_normalized(result["report"])
                    == _normalized(alone["report"]))
        # Exactly one first lane carries the width of the whole stack.
        widths = [r["stack_width"] for r in results if "stack_width" in r]
        assert widths == [3]

    def test_width_sums_to_stacked_request_count(self):
        """The serve.stack invariant at the worker level: across a mixed
        batch — duplicates, a second shape group, non-stacked riders —
        the first-lane widths sum to exactly the number of results that
        executed stacked."""
        payloads = [
            _stacked(100),
            _stacked(100),             # duplicate: deduped, NOT a lane
            _stacked(150),
            _stacked(80, n_procs=8, bank_cycle=2),  # second shape group
            _cfm(100),                 # engineless: never stacked
        ]
        results = serve_worker_batch(payloads)
        assert all(r["ok"] for r in results)
        stacked_results = [r for r in results if r.get("stacked")]
        widths = [r["stack_width"] for r in results if "stack_width" in r]
        assert sum(widths) == len(stacked_results) == 3
        assert sorted(widths) == [1, 2]  # (4,1) group of 2, (16,2) group of 1
        # The dedup replica inherits the report but no stack bookkeeping —
        # else widths would double-count.
        dup = results[1]
        assert dup["deduped"] is True
        assert "stacked" not in dup and "stack_width" not in dup
        assert (_normalized(dup["report"])
                == _normalized(results[0]["report"]))
        # The engineless rider is untouched by the stacking path.
        assert "stacked" not in results[4]

    def test_service_accounting_width_sums_to_requests(self, pool):
        """Service-level serve.stack counters: width always sums to the
        stacked-executed request count, stacks matches the width samples."""

        async def scenario():
            service = SimulationService(pool=pool, max_inflight=8,
                                        max_batch=4, cache_size=0)
            tasks = [asyncio.ensure_future(service.process(
                {"id": f"k{i}", "system": "cfm",
                 "params": dict(CFM_PARAMS, cycles=100 + 10 * i,
                                engine="stacked")})) for i in range(6)]
            await asyncio.sleep(0)
            await service.drain()
            return service, [t.result() for t in tasks]

        service, results = asyncio.run(scenario())
        assert all(r["ok"] for r in results)
        snap = service.metrics_snapshot()
        counts = snap["service"]["serve.stack"]["counts"]
        assert counts["requests"] == 6
        assert counts["width"] == counts["requests"]
        width_stats = snap["service"]["serve.stack.width"]
        assert width_stats["n"] == counts["stacks"] >= 1


# --------------------------------------------------------------------------
# The batcher (asyncio, real pool)


class TestMicroBatcher:
    def test_max_batch_validated(self, pool):
        with pytest.raises(ValueError, match="max_batch"):
            MicroBatcher(pool, max_batch=0)

    def test_concurrent_submits_coalesce_and_resolve(self, pool):
        from repro.obs.metrics import MetricsRegistry

        metrics = MetricsRegistry()

        async def scenario():
            batcher = MicroBatcher(pool, max_batch=4, metrics=metrics)
            payloads = [_cfm(100 + 10 * (i % 3)) for i in range(12)]
            results = await asyncio.gather(
                *(batcher.submit(dict(p)) for p in payloads))
            return batcher, payloads, results

        batcher, payloads, results = asyncio.run(scenario())
        assert batcher.pending() == 0 and batcher.inflight_batches() == 0
        for payload, result in zip(payloads, results):
            assert result["ok"], result.get("error")
            assert (_normalized(result["report"])
                    == _normalized(serve_worker(dict(payload))["report"]))
        sizes = metrics.stats("serve.batch.size")
        counts = metrics.counter("serve.batch")
        assert counts["requests"] == 12
        assert counts["batches"] == sizes.n
        assert sizes.maximum <= 4
        assert counts["batches"] < 12  # something actually coalesced

    def test_different_keys_never_share_a_batch(self, pool):
        async def scenario():
            batcher = MicroBatcher(pool, max_batch=8)
            a = {"system": "cfm", "params": {"n_procs": 4, "bank_cycle": 1,
                                             "cycles": 100}}
            b = {"system": "cfm", "params": {"n_procs": 8, "bank_cycle": 2,
                                             "cycles": 100}}
            # Force both onto one shard so key-splitting, not routing,
            # is what separates them.
            results = await asyncio.gather(
                *(batcher.submit(dict(p), shard=0)
                  for p in [a, b, a, b, a, b]))
            return results

        results = asyncio.run(scenario())
        assert all(r["ok"] for r in results)
        shapes = {r["report"]["params"]["n_banks"] for r in results}
        assert shapes == {4, 16}

    def test_max_batch_one_is_per_request_dispatch(self, pool):
        from repro.obs.metrics import MetricsRegistry

        metrics = MetricsRegistry()

        async def scenario():
            batcher = MicroBatcher(pool, max_batch=1, metrics=metrics)
            results = await asyncio.gather(
                *(batcher.submit(_cfm(100)) for _ in range(5)))
            return results

        results = asyncio.run(scenario())
        assert all(r["ok"] for r in results)
        counts = metrics.counter("serve.batch")
        assert counts["batches"] == counts["requests"] == 5
        assert metrics.stats("serve.batch.size").maximum == 1.0


# --------------------------------------------------------------------------
# Flush-order fairness (deterministic fake pool: the test completes
# batches by hand, so which key flushes next is fully observable)


class _FakePool:
    """Captures dispatched batches; the test completes them explicitly."""

    n_shards = 1
    procs_per_shard = 1  # capacity 1: everything after batch 1 must queue

    def __init__(self):
        self.batches = []

    def shard_of(self, system, params):
        return 0

    def submit_batch(self, payloads, shard, callback, error_callback):
        self.batches.append((payloads, callback))

    def complete_next(self):
        payloads, callback = self.batches[len(self.batches) - 1]
        callback([{"ok": True, "report": dict(p["params"]), "wall_ms": 0.0}
                  for p in payloads])


def _shape_payload(n_procs, cycles):
    return {"system": "cfm", "params": {"n_procs": n_procs, "bank_cycle": 1,
                                        "cycles": cycles}}


class TestFlushFairness:
    def test_hot_key_cannot_starve_older_key(self):
        """Satellite regression: a stream of same-shape arrivals landing
        behind an older different-shape request must not be flushed ahead
        of it — the lead pick is the OLDEST pending entry's key."""

        async def scenario():
            pool = _FakePool()
            batcher = MicroBatcher(pool, max_batch=8)
            first = asyncio.ensure_future(
                batcher.submit(_shape_payload(4, 100)))
            await asyncio.sleep(0)
            assert len(pool.batches) == 1  # capacity 1: in flight
            # The older, different-shape victim...
            victim = asyncio.ensure_future(
                batcher.submit(_shape_payload(8, 100)))
            # ...then a hot same-shape stream arrives behind it.
            hot = [asyncio.ensure_future(
                batcher.submit(_shape_payload(4, 100 + i)))
                for i in range(4)]
            await asyncio.sleep(0)
            assert batcher.pending() == 5
            pool.complete_next()  # finish batch 1 → one flush decision
            await asyncio.sleep(0)
            # The victim's key flushed next, alone — not the hot key.
            assert [p["params"]["n_procs"]
                    for p in pool.batches[1][0]] == [8]
            pool.complete_next()
            await asyncio.sleep(0)
            assert [p["params"]["n_procs"]
                    for p in pool.batches[2][0]] == [4, 4, 4, 4]
            pool.complete_next()
            await asyncio.sleep(0)
            await asyncio.gather(first, victim, *hot)

        asyncio.run(scenario())

    def test_latency_critical_key_flushes_first(self):
        """Criticality only reorders the contended flush: a queued
        latency-critical request pulls its key's batch ahead of an older
        untagged key."""

        async def scenario():
            pool = _FakePool()
            batcher = MicroBatcher(pool, max_batch=8)
            first = asyncio.ensure_future(
                batcher.submit(_shape_payload(4, 100)))
            await asyncio.sleep(0)
            older = asyncio.ensure_future(
                batcher.submit(_shape_payload(8, 100)))
            crit = asyncio.ensure_future(
                batcher.submit(_shape_payload(16, 100),
                               criticality="latency_critical"))
            await asyncio.sleep(0)
            pool.complete_next()
            await asyncio.sleep(0)
            # The critical request's key wins the contended flush...
            assert [p["params"]["n_procs"]
                    for p in pool.batches[1][0]] == [16]
            pool.complete_next()
            await asyncio.sleep(0)
            # ...and the older key follows (reordered, never starved).
            assert [p["params"]["n_procs"]
                    for p in pool.batches[2][0]] == [8]
            pool.complete_next()
            await asyncio.sleep(0)
            await asyncio.gather(first, older, crit)

        asyncio.run(scenario())

    def test_untagged_flush_order_is_arrival_order(self):
        """With no tags every rank ties, so the (rank, seq) lead pick is
        exactly the seed FIFO behavior — key after key in arrival order."""

        async def scenario():
            pool = _FakePool()
            batcher = MicroBatcher(pool, max_batch=8)
            tasks = [asyncio.ensure_future(batcher.submit(p)) for p in (
                _shape_payload(4, 100), _shape_payload(8, 100),
                _shape_payload(16, 100), _shape_payload(8, 110))]
            await asyncio.sleep(0)
            order = []
            while batcher.pending() or batcher.inflight_batches():
                order.append([p["params"]["n_procs"]
                              for p in pool.batches[-1][0]])
                pool.complete_next()
                await asyncio.sleep(0)
            await asyncio.gather(*tasks)
            assert order == [[4], [8, 8], [16]]

        asyncio.run(scenario())


# --------------------------------------------------------------------------
# Service integration: streaming + backpressure survive batching


class TestBatchedService:
    def test_streamed_responses_with_batching_and_faults(self, pool):
        async def scenario():
            service = SimulationService(pool=pool, max_inflight=4,
                                        max_batch=3, cache_size=0)
            server = await service.start("127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            requests = [
                {"id": f"r{i}", "tenant": "t", "system": "cfm",
                 "params": dict(CFM_PARAMS, cycles=100 + 25 * (i % 2))}
                for i in range(8)
            ]
            requests.append({"id": "flt", "system": "cfm",
                             "params": dict(CFM_PARAMS),
                             "inject": dict(DEAD_BANK_INJECT)})
            for req in requests:
                writer.write((json.dumps(req) + "\n").encode())
            await writer.drain()
            writer.write_eof()
            responses = {}
            while len(responses) < len(requests):
                line = await reader.readline()
                assert line, "connection closed early"
                resp = json.loads(line)
                responses[resp["id"]] = resp
            writer.close()
            server.close()
            await server.wait_closed()
            return service, responses

        service, responses = asyncio.run(scenario())
        assert all(responses[f"r{i}"]["ok"] for i in range(8))
        flt = responses["flt"]
        assert flt["ok"] is False and flt["error"]["typed"]
        assert service.peak_inflight <= 4
        snap = service.metrics_snapshot()
        assert snap["service"]["serve.batch.size"]["max"] <= 3
        assert snap["batch"]["pending"] == 0

    def test_drain_waits_for_inflight_work(self, pool):
        async def scenario():
            service = SimulationService(pool=pool, max_inflight=8,
                                        max_batch=4, cache_size=0)
            tasks = [asyncio.ensure_future(service.process(
                {"id": f"d{i}", "system": "cfm",
                 "params": dict(CFM_PARAMS)})) for i in range(6)]
            await asyncio.sleep(0)  # let the tasks submit to the batcher
            await service.drain()
            assert service.closing is True
            assert all(t.done() for t in tasks), "drain returned early"
            return [t.result() for t in tasks]

        results = asyncio.run(scenario())
        assert all(r["ok"] for r in results)


# --------------------------------------------------------------------------
# Graceful shutdown (subprocess: the full `repro serve` surface)


class TestGracefulShutdown:
    def test_sigterm_drains_flushes_metrics_and_exits_clean(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
        cwd = os.path.dirname(os.path.dirname(__file__))
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--host", "127.0.0.1",
             "--port", "0", "--shards", "1", "--warm", "4x1",
             "--max-batch", "4", "--cache-size", "8"],
            stderr=subprocess.PIPE, text=True, env=env, cwd=cwd,
        )
        try:
            announce = proc.stderr.readline()
            assert "serving JSONL+HTTP on " in announce, announce
            hostport = announce.split("serving JSONL+HTTP on ", 1)[1].split()[0]
            host, _, port = hostport.rpartition(":")

            async def drive():
                reader, writer = await asyncio.open_connection(
                    host, int(port))
                for i in range(3):
                    req = {"id": f"s{i}", "system": "cfm",
                           "params": dict(CFM_PARAMS, cycles=100 + 50 * i)}
                    writer.write((json.dumps(req) + "\n").encode())
                await writer.drain()
                responses = []
                while len(responses) < 3:
                    line = await asyncio.wait_for(reader.readline(),
                                                  timeout=60)
                    assert line, "connection closed early"
                    responses.append(json.loads(line))
                # A repeat of s0 after its result is cached → one hit
                # (sent separately so it can't ride s0's batch instead).
                writer.write((json.dumps(
                    {"id": "s3", "system": "cfm",
                     "params": dict(CFM_PARAMS, cycles=100)}) + "\n").encode())
                await writer.drain()
                writer.write_eof()
                line = await asyncio.wait_for(reader.readline(), timeout=60)
                assert line, "connection closed early"
                responses.append(json.loads(line))
                writer.close()
                return responses

            responses = asyncio.run(drive())
            assert all(r["ok"] for r in responses)
            proc.send_signal(signal.SIGTERM)
            proc.wait(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)
        stderr = proc.stderr.read()
        assert proc.returncode == 0, (proc.returncode, stderr)
        assert "draining in-flight requests" in stderr, stderr
        assert "final metrics: " in stderr, stderr
        final = json.loads(stderr.split("final metrics: ", 1)[1]
                           .splitlines()[0])
        assert final["service"]["serve.requests"]["counts"]["total"] == 4
        assert final["cache"]["hits"] == 1  # the duplicate hit
        assert "Traceback" not in stderr, stderr
        assert "BrokenProcessPool" not in stderr, stderr

    def test_sigint_also_exits_clean(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
        cwd = os.path.dirname(os.path.dirname(__file__))
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--host", "127.0.0.1",
             "--port", "0", "--shards", "1", "--warm", "4x1"],
            stderr=subprocess.PIPE, text=True, env=env, cwd=cwd,
        )
        try:
            announce = proc.stderr.readline()
            assert "serving JSONL+HTTP on " in announce, announce
            time.sleep(0.2)
            proc.send_signal(signal.SIGINT)
            proc.wait(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)
        stderr = proc.stderr.read()
        assert proc.returncode == 0, (proc.returncode, stderr)
        assert "final metrics: " in stderr, stderr
        assert "Traceback" not in stderr, stderr

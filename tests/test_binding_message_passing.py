"""Tests for the plain message-passing baseline (§6.1.2)."""

import pytest

from repro.binding.message_passing import MessagePassingRuntime, Recv, Send
from repro.sim.procs import Delay, SchedulerDeadlock


class TestSendRecv:
    def test_simple_exchange(self):
        rt = MessagePassingRuntime()
        got = []

        def sender():
            yield Send(1, "hello")

        def receiver():
            msg = yield Recv(src=0)
            got.append(msg.data)

        rt.spawn_rank(0, sender())
        rt.spawn_rank(1, receiver())
        rt.run()
        assert got == ["hello"]

    def test_recv_blocks_until_send(self):
        rt = MessagePassingRuntime()
        log = []

        def receiver():
            msg = yield Recv()
            log.append(("got", rt.sched.cycle))

        def sender():
            yield Delay(5)
            yield Send(0, 1)
            log.append(("sent", rt.sched.cycle))

        rt.spawn_rank(0, receiver())
        rt.spawn_rank(1, sender())
        rt.run()
        events = dict(log)
        assert events["got"] >= events["sent"]

    def test_tag_filtering(self):
        rt = MessagePassingRuntime()
        got = []

        def sender():
            yield Send(1, "wrong", tag="a")
            yield Send(1, "right", tag="b")

        def receiver():
            msg = yield Recv(tag="b")
            got.append(msg.data)

        rt.spawn_rank(0, sender())
        rt.spawn_rank(1, receiver())
        rt.run()
        assert got == ["right"]

    def test_fifo_per_channel(self):
        rt = MessagePassingRuntime()
        got = []

        def sender():
            for i in range(4):
                yield Send(1, i)

        def receiver():
            for _ in range(4):
                msg = yield Recv(src=0)
                got.append(msg.data)

        rt.spawn_rank(0, sender())
        rt.spawn_rank(1, receiver())
        rt.run()
        assert got == [0, 1, 2, 3]

    def test_wildcard_source(self):
        rt = MessagePassingRuntime()
        got = []

        def sender(rank):
            def gen():
                yield Delay(rank)
                yield Send(0, rank)

            return gen()

        def receiver():
            for _ in range(2):
                msg = yield Recv()
                got.append(msg.src)

        rt.spawn_rank(0, receiver())
        rt.spawn_rank(1, sender(1))
        rt.spawn_rank(2, sender(2))
        rt.run()
        assert sorted(got) == [1, 2]


class TestFailureModes:
    def test_mismatched_pair_deadlocks(self):
        """§6.1.2's weakness: a missing send is an undetectable hang —
        the scheduler-level deadlock is all you get."""
        rt = MessagePassingRuntime()

        def lonely():
            yield Recv(src=1, tag="never")

        def other():
            yield Recv(src=0, tag="also-never")

        rt.spawn_rank(0, lonely())
        rt.spawn_rank(1, other())
        with pytest.raises(SchedulerDeadlock):
            rt.run()

    def test_unknown_destination_rejected(self):
        rt = MessagePassingRuntime()

        def sender():
            yield Send(9, "x")

        rt.spawn_rank(0, sender())
        with pytest.raises(ValueError):
            rt.run()

    def test_duplicate_rank_rejected(self):
        rt = MessagePassingRuntime()
        rt.spawn_rank(0, iter(()))
        with pytest.raises(ValueError):
            rt.spawn_rank(0, iter(()))


class TestRingProgram:
    def test_token_ring(self):
        """A classic MP program: pass a token around a ring."""
        rt = MessagePassingRuntime()
        n = 5
        path = []

        def node(rank):
            def gen():
                if rank == 0:
                    yield Send((rank + 1) % n, ["token"])
                    msg = yield Recv(src=n - 1)
                    path.append(rank)
                else:
                    msg = yield Recv(src=rank - 1)
                    path.append(rank)
                    yield Send((rank + 1) % n, msg.data)

            return gen()

        for r in range(n):
            rt.spawn_rank(r, node(r))
        rt.run()
        assert path == [1, 2, 3, 4, 0]
        assert rt.stats_sends == n

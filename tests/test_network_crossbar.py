"""Tests for the conventional interconnect baselines."""

import pytest

from repro.network.crossbar import ArbitratedCrossbar, CircuitSwitchRetryModel


class TestArbitratedCrossbar:
    def test_non_conflicting_requests_all_granted(self):
        xb = ArbitratedCrossbar(4)
        granted = xb.arbitrate([(0, 1), (1, 2), (2, 3)])
        assert granted == [(0, 1), (1, 2), (2, 3)]
        assert xb.rejected == 0

    def test_output_conflicts_serialized(self):
        xb = ArbitratedCrossbar(4)
        granted = xb.arbitrate([(0, 2), (1, 2), (3, 2)])
        assert granted == [(0, 2)]  # lowest input wins
        assert xb.rejected == 2

    def test_setup_delay_nonzero_unlike_synchronous_switch(self):
        assert ArbitratedCrossbar(4, setup_delay=2).transfer_latency() == 2

    def test_port_bounds(self):
        xb = ArbitratedCrossbar(4)
        with pytest.raises(ValueError):
            xb.arbitrate([(0, 4)])


class TestCircuitSwitchRetryModel:
    def test_disjoint_paths_coexist(self):
        model = CircuitSwitchRetryModel(8, hold_cycles=8, seed=1)
        assert model.try_request(0, 0) is not None
        # i → i is the identity permutation: always compatible.
        assert model.try_request(1, 1) is not None
        assert model.rejections == 0

    def test_conflicting_request_rejected_then_retries(self):
        model = CircuitSwitchRetryModel(8, hold_cycles=8, seed=1)
        assert model.try_request(0, 3) is not None
        assert model.try_request(1, 3) is None  # same destination port
        assert model.rejections == 1
        model.advance(8)  # path released
        assert model.try_request(1, 3) is not None

    def test_backoff_within_window(self):
        model = CircuitSwitchRetryModel(8, hold_cycles=10, retry_min=2,
                                        retry_max=6, seed=2)
        for _ in range(50):
            assert 2 <= model.backoff() <= 6

    def test_uniform_shift_traffic_never_rejected(self):
        """Lawrie shifts are conflict-free even on the circuit switch."""
        model = CircuitSwitchRetryModel(8, hold_cycles=8, seed=3)
        for i in range(8):
            assert model.try_request(i, (i + 3) % 8) is not None
        assert model.rejections == 0

    def test_rejection_rate_grows_with_load(self):
        import numpy as np

        def run(requests_per_advance):
            model = CircuitSwitchRetryModel(16, hold_cycles=8, seed=3)
            rng = np.random.default_rng(9)
            for i in range(400):
                model.try_request(
                    int(rng.integers(0, 16)), int(rng.integers(0, 16))
                )
                if i % requests_per_advance == 0:
                    model.advance(1)
            return model.rejection_rate

        assert run(8) > run(1)  # more concurrent holds → more rejections

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            CircuitSwitchRetryModel(8, hold_cycles=0)
        with pytest.raises(ValueError):
            CircuitSwitchRetryModel(8, hold_cycles=4, retry_min=0)

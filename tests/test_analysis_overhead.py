"""Tests for the network-overhead comparison (§3.4.3)."""

import pytest

from repro.analysis.overhead import (
    large_address_space_offset_bits,
    network_overhead_comparison,
    setup_delay_total,
)


class TestComparison:
    def test_three_designs_reported(self):
        rows = network_overhead_comparison()
        assert len(rows) == 3
        names = [r.design for r in rows]
        assert any("CFM" in n for n in names)

    def test_cfm_has_zero_setup_and_smallest_header(self):
        rows = network_overhead_comparison()
        cfm = next(r for r in rows if "CFM" in r.design)
        circuit = next(r for r in rows if "circuit" in r.design)
        assert cfm.setup_delay_per_stage == 0
        assert cfm.header_bits < circuit.header_bits
        assert not cfm.needs_flow_control
        assert not cfm.needs_conflict_resolution

    def test_circuit_switching_needs_everything(self):
        circuit = next(
            r for r in network_overhead_comparison() if "circuit" in r.design
        )
        assert circuit.needs_flow_control
        assert circuit.needs_conflict_resolution

    def test_partial_between_the_two(self):
        rows = network_overhead_comparison()
        cfm = next(r for r in rows if "CFM" in r.design)
        part = next(r for r in rows if "partially" in r.design)
        circ = next(r for r in rows if "circuit" in r.design)
        assert cfm.header_bits <= part.header_bits <= circ.header_bits


class TestHelpers:
    def test_setup_delay_total(self):
        assert setup_delay_total(6, 1) == 6
        assert setup_delay_total(6, 0) == 0
        with pytest.raises(ValueError):
            setup_delay_total(-1, 1)

    def test_large_space_offset_bits(self):
        """§3.4.3: >4 GB shared space = wider offset, nothing else."""
        b32 = large_address_space_offset_bits(4 * 2**30, 32)
        b38 = large_address_space_offset_bits(256 * 2**30, 32)
        assert b38 == b32 + 6

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            large_address_space_offset_bits(100, 32)

"""Tests for atomic swap / RMW and the Fig 4.6 interaction matrix (§4.2)."""

import pytest

from repro.core.block import Block
from repro.core.cfm import AccessKind, CFMemory
from repro.core.config import CFMConfig
from repro.tracking.access_control import AddressTrackingController, PriorityMode
from repro.tracking.atomic import (
    CFMDriver,
    OpStatus,
    ReadOperation,
    SwapOperation,
    WriteOperation,
    fetch_and_add,
)
from repro.tracking.atomic import test_and_set as atomic_test_and_set


def make_driver(n=8):
    cfg = CFMConfig(n_procs=n, bank_cycle=1)
    ctl = AddressTrackingController(cfg.n_banks, PriorityMode.FIRST_WINS)
    mem = CFMemory(cfg, controller=ctl)
    return CFMDriver(mem), ctl


class TestSwapBasics:
    def test_swap_returns_old_and_stores_new(self):
        d, _ = make_driver()
        d.mem.poke_block(0, Block.of_values([7] * 8, "init"))
        s = SwapOperation(d, 0, 0, [9] * 8, version="s").start()
        d.run_until(lambda: s.done)
        assert s.status is OpStatus.DONE
        assert s.old_block.values == [7] * 8
        assert d.mem.peek_block(0).values == [9] * 8

    def test_swap_phases_are_continuous(self):
        """§4.2.1: read + write proceed with no extra delay → exactly 2β."""
        d, _ = make_driver()
        s = SwapOperation(d, 0, 0, [1] * 8).start()
        d.run_until(lambda: s.done)
        assert s.total_latency == 16  # 8 (read) + 8 (write), back to back

    def test_rmw_callable_new_values(self):
        d, _ = make_driver()
        d.mem.poke_block(0, Block.of_values([10] * 8, "init"))
        s = SwapOperation(d, 0, 0, lambda old: [w.value * 2 for w in old.words]).start()
        d.run_until(lambda: s.done)
        assert d.mem.peek_block(0).values == [20] * 8

    def test_swap_value_width_checked(self):
        d, _ = make_driver()
        s = SwapOperation(d, 0, 0, [1, 2]).start()
        with pytest.raises(ValueError):
            d.run_until(lambda: s.done)


class TestFig46Interactions:
    def test_a_concurrent_swaps_serialize(self):
        """Fig 4.6a/b: overlapping swaps — one restarts, results match a
        serial order."""
        d, _ = make_driver()
        d.mem.poke_block(0, Block.of_values([0] * 8, "init"))
        s1 = SwapOperation(d, 0, 0, [1] * 8, version="s1").start()
        s2 = SwapOperation(d, 4, 0, [2] * 8, version="s2").start()
        d.run_until(lambda: s1.done and s2.done)
        old1, old2 = s1.old_block.values[0], s2.old_block.values[0]
        final = d.mem.peek_block(0).values[0]
        serial_orders = {  # (old1, old2, final) for s1;s2 and s2;s1
            (0, 1, 2),
            (2, 0, 1),
        }
        assert (old1, old2, final) in serial_orders
        assert s1.full_restarts + s2.full_restarts >= 1

    def test_c_disjoint_swaps_no_conflict(self):
        """Fig 4.6c: non-overlapping swaps finish without restarts."""
        d, _ = make_driver()
        s1 = SwapOperation(d, 0, 1, [1] * 8).start()
        d.run(8)
        s2 = SwapOperation(d, 4, 1, [2] * 8).start()
        d.run(20)
        # s1's write overlaps nothing of s2's read window here.
        d.run_until(lambda: s1.done and s2.done)
        assert s1.full_restarts == 0

    def test_d_write_restarts_on_swap_write(self):
        """Fig 4.6d: a simple write detecting a swap's write restarts
        (rather than aborting) and eventually completes."""
        d, ctl = make_driver()
        s = SwapOperation(d, 0, 0, [1] * 8, version="s").start()
        d.run(9)  # swap is now in its write phase
        w = WriteOperation(d, 4, 0, [2] * 8, version="w").start()
        d.run_until(lambda: s.done and w.done)
        assert w.status is OpStatus.DONE
        assert w.attempts >= 2  # restarted at least once
        assert d.mem.peek_block(0).values == [2] * 8  # write serialized after

    def test_e_swap_restarts_on_simple_write(self):
        """Fig 4.6e: a swap detecting a simple write restarts entirely."""
        d, _ = make_driver()
        w = WriteOperation(d, 4, 0, [2] * 8, version="w").start()
        s = SwapOperation(d, 0, 0, [1] * 8, version="s").start()
        d.tick()
        d.run_until(lambda: s.done and w.done)
        assert s.status is OpStatus.DONE
        # Swap serialized after the write: it must have read w's data.
        assert s.old_block.values == [2] * 8
        assert d.mem.peek_block(0).values == [1] * 8

    def test_f_write_write_first_wins(self):
        """Fig 4.6f: under swap-mode priority the later simple write
        aborts after detecting the earlier one."""
        d, ctl = make_driver()
        w1 = WriteOperation(d, 1, 0, [1] * 8, version="first").start()
        d.tick()
        w2 = WriteOperation(d, 5, 0, [2] * 8, version="second").start()
        d.run_until(lambda: w1.done and w2.done)
        assert w1.status is OpStatus.DONE
        assert w2.status is OpStatus.ABORTED
        assert d.mem.peek_block(0).versions[0] == "first"


class TestAtomicity:
    @pytest.mark.parametrize("n_swappers", [2, 4, 8])
    def test_swaps_form_a_chain(self, n_swappers):
        """Each completed swap's old value is another's new value (or the
        initial value): the defining property of atomic exchange."""
        d, _ = make_driver()
        d.mem.poke_block(0, Block.of_values([0] * 8, "init"))
        procs = range(0, 8, 8 // n_swappers)
        swaps = [
            SwapOperation(d, p, 0, [p + 1] * 8, version=f"s{p}").start()
            for p in procs
        ]
        d.run_until(lambda: all(s.done for s in swaps))
        olds = sorted(s.old_block.values[0] for s in swaps)
        news = sorted([p + 1 for p in procs])
        final = d.mem.peek_block(0).values[0]
        # Multiset equality: {olds} = {0} ∪ {news} − {final}
        expected = sorted([0] + [v for v in news if v != final] )
        assert olds == expected

    def test_fetch_and_add_accumulates(self):
        d, _ = make_driver()
        d.mem.poke_block(0, Block.of_values([0] * 8, "init"))
        ops = [fetch_and_add(d, p, 0, 1) for p in (0, 2, 4, 6)]
        d.run_until(lambda: all(o.done for o in ops))
        assert d.mem.peek_block(0).values[0] == 4
        assert sorted(o.old_block.values[0] for o in ops) == [0, 1, 2, 3]

    def test_test_and_set_exactly_one_winner(self):
        d, _ = make_driver()
        d.mem.poke_block(0, Block.of_values([0] * 8, "init"))
        ops = [atomic_test_and_set(d, p, 0) for p in (1, 3, 5, 7)]
        d.run_until(lambda: all(o.done for o in ops))
        winners = [o for o in ops if all(w.value == 0 for w in o.old_block.words)]
        assert len(winners) == 1


class TestPriorityOverReads:
    def test_spinning_readers_do_not_delay_swap(self):
        """§4.2.2: reads have lowest priority — a swap under a storm of
        same-block reads completes in its conflict-free time."""
        d, _ = make_driver()
        readers = [ReadOperation(d, p, 0).start() for p in (1, 2, 3, 5, 6, 7)]
        s = SwapOperation(d, 0, 0, [1] * 8, version="s").start()
        d.run_until(lambda: s.done)
        assert s.total_latency == 16  # undisturbed 2β
        d.run_until(lambda: all(r.done for r in readers))


class TestTimeoutForensics:
    """SimulationTimeout from the driver must name what is wedged —
    including operations parked on the deferred heap, not just the
    memory's active accesses."""

    def test_timeout_names_deferred_recovery_ops(self):
        from repro.faults import RecoveringOp
        from repro.sim.engine import SimulationTimeout

        d, _ = make_driver()
        op = RecoveringOp(d, 1, 2)
        op.attempts = 3  # as if parked after three failed issues
        d.defer(100, op.start)
        with pytest.raises(SimulationTimeout) as exc:
            d.run_until(lambda: False, max_slots=5)
        msg = str(exc.value)
        assert "deferred RecoveringOp proc 1@2 attempts=3" in msg
        assert any("RecoveringOp proc 1@2" in s for s in exc.value.stuck)

    def test_timeout_reports_plain_callbacks_by_name(self):
        from repro.sim.engine import SimulationTimeout

        d, _ = make_driver()

        def poke_later():
            pass

        d.defer(100, poke_later)
        with pytest.raises(SimulationTimeout) as exc:
            d.run_until(lambda: False, max_slots=5)
        assert "deferred callback poke_later" in str(exc.value)

    def test_timeout_still_names_active_accesses(self):
        from repro.sim.engine import SimulationTimeout

        d, _ = make_driver()
        # An access that never finishes within the budget: issue and bound
        # the run to fewer slots than a block access needs.
        ReadOperation(d, 2, 1).start()
        with pytest.raises(SimulationTimeout) as exc:
            d.run_until(lambda: False, max_slots=3)
        assert "proc 2" in str(exc.value)

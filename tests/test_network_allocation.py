"""Tests for processor-allocation strategies (§7.2)."""

import pytest

from repro.memory.interleaved import PartialCFMemorySimulator
from repro.network.allocation import (
    AllocatedPartialCFSystem,
    AllocationStrategy,
    make_division_map,
)


class TestDivisionMaps:
    def test_aligned_is_balanced(self):
        m = make_division_map(16, 4, AllocationStrategy.ALIGNED)
        assert m == [p % 4 for p in range(16)]

    def test_adversarial_all_zero(self):
        assert make_division_map(8, 4, AllocationStrategy.ADVERSARIAL) == [0] * 8

    def test_random_reproducible(self):
        a = make_division_map(16, 4, AllocationStrategy.RANDOM, seed=1)
        b = make_division_map(16, 4, AllocationStrategy.RANDOM, seed=1)
        assert a == b
        assert all(0 <= d < 4 for d in a)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            make_division_map(0, 4, AllocationStrategy.ALIGNED)


class TestAllocatedSystem:
    def test_aligned_has_no_intra_cluster_collisions(self):
        sys_ = AllocatedPartialCFSystem(32, 4,
                                        AllocationStrategy.ALIGNED)
        assert sys_.intra_cluster_collisions() == 0

    def test_adversarial_maximizes_collisions(self):
        sys_ = AllocatedPartialCFSystem(32, 4,
                                        AllocationStrategy.ADVERSARIAL)
        per = sys_.divisions_per_module
        expected = sys_.n_clusters * (per - 1)
        assert sys_.intra_cluster_collisions() == expected

    def test_random_lands_between(self):
        aligned = AllocatedPartialCFSystem(64, 8,
                                           AllocationStrategy.ALIGNED)
        rand = AllocatedPartialCFSystem(64, 8,
                                        AllocationStrategy.RANDOM, seed=2)
        adv = AllocatedPartialCFSystem(64, 8,
                                       AllocationStrategy.ADVERSARIAL)
        assert (aligned.intra_cluster_collisions()
                < rand.intra_cluster_collisions()
                <= adv.intra_cluster_collisions())

    def test_measured_efficiency_ordering(self):
        """Aligned allocation outperforms random outperforms adversarial —
        the §7.2 motivation quantified."""
        def eff(strategy):
            sys_ = AllocatedPartialCFSystem(
                32, 4, strategy, bank_cycle=2, seed=3
            )
            sim = PartialCFMemorySimulator(sys_, rate=0.04, locality=0.8,
                                           seed=3)
            return sim.measure_efficiency(15_000)

        e_aligned = eff(AllocationStrategy.ALIGNED)
        e_random = eff(AllocationStrategy.RANDOM)
        e_adv = eff(AllocationStrategy.ADVERSARIAL)
        assert e_aligned > e_random > e_adv

"""Tests for the slot-accurate CFM memory engine (§3.1, Figs 3.2/3.5/3.6)."""

import pytest

from repro.core.block import Block
from repro.core.cfm import (
    AccessKind,
    AccessState,
    CFMemory,
    ConflictError,
    ControlAction,
    AccessController,
)
from repro.core.config import CFMConfig


def make(n=4, c=1, **kw):
    return CFMemory(CFMConfig(n_procs=n, bank_cycle=c), **kw)


class TestBlockAccessTiming:
    def test_read_latency_is_beta_c1(self):
        mem = make(4, 1)
        acc = mem.issue(0, AccessKind.READ, 0)
        mem.drain()
        assert acc.state is AccessState.COMPLETED
        assert acc.latency == 4  # β = 4 + 1 − 1

    def test_read_latency_is_beta_c2(self):
        """Fig 3.6: with c = 2 the final word drains one extra cycle."""
        mem = make(4, 2)
        acc = mem.issue(0, AccessKind.READ, 0)
        mem.drain()
        assert acc.latency == 9  # β = 8 + 2 − 1

    def test_access_starts_at_any_slot_without_stall(self):
        """§3.1.1: no delay required before starting a block access."""
        mem = make(4, 1)
        mem.run(3)  # arbitrary phase
        acc = mem.issue(2, AccessKind.READ, 0)
        mem.drain()
        assert acc.latency == 4
        assert acc.first_bank == mem.cfg.bank_for(2, 3)

    def test_concurrent_accesses_all_complete_at_full_speed(self):
        mem = make(8, 1)
        accs = [mem.issue(p, AccessKind.READ, p) for p in range(8)]
        mem.drain()
        assert all(a.latency == 8 for a in accs)

    def test_staggered_issues_never_conflict(self):
        mem = make(8, 1)
        accs = []
        for p in range(8):
            accs.append(mem.issue(p, AccessKind.READ, 0))
            mem.tick()
        mem.drain()
        assert all(a.state is AccessState.COMPLETED for a in accs)
        assert all(a.latency == 8 for a in accs)


class TestDataMovement:
    def test_write_then_read_roundtrip(self):
        mem = make(4, 1)
        w = mem.issue(0, AccessKind.WRITE, 5, data=Block.of_values([1, 2, 3, 4]),
                      version="v1")
        mem.drain()
        r = mem.issue(1, AccessKind.READ, 5)
        mem.drain()
        assert r.result.values == [1, 2, 3, 4]
        assert r.result.is_single_version()

    def test_blocks_at_different_offsets_independent(self):
        mem = make(4, 1)
        mem.issue(0, AccessKind.WRITE, 1, data=Block.of_values([9] * 4))
        mem.drain()
        r = mem.issue(0, AccessKind.READ, 2)
        mem.drain()
        assert r.result.values == [0, 0, 0, 0]

    def test_each_bank_written_exactly_once(self):
        mem = make(4, 1)
        w = mem.issue(3, AccessKind.WRITE, 0, data=Block.of_values([5, 6, 7, 8]))
        mem.drain()
        assert sorted(w.banks_written) == [0, 1, 2, 3]
        assert mem.peek_block(0).values == [5, 6, 7, 8]

    def test_fig_4_1_corruption_without_access_control(self):
        """Two same-block writes interleave into a mixed-version block:
        'bank 0 contains data from processor 1 and the others contain data
        from processor 0' (Fig 4.1, permissive controller)."""
        mem = make(4, 1)
        mem.issue(0, AccessKind.WRITE, 0, data=Block.of_values([1, 2, 3, 4]),
                  version="P0")
        mem.issue(1, AccessKind.WRITE, 0, data=Block.of_values([11, 12, 13, 14]),
                  version="P1")
        mem.drain()
        blk = mem.peek_block(0)
        assert not blk.is_single_version()
        assert blk.versions == ["P1", "P0", "P0", "P0"]


class TestEngineRules:
    def test_one_outstanding_access_per_processor(self):
        mem = make(4, 1)
        mem.issue(0, AccessKind.READ, 0)
        with pytest.raises(ValueError):
            mem.issue(0, AccessKind.READ, 1)

    def test_write_requires_full_block_data(self):
        mem = make(4, 1)
        with pytest.raises(ValueError):
            mem.issue(0, AccessKind.WRITE, 0, data=Block.of_values([1, 2]))
        with pytest.raises(ValueError):
            mem.issue(0, AccessKind.WRITE, 0)

    def test_proc_out_of_range(self):
        mem = make(4, 1)
        with pytest.raises(ValueError):
            mem.issue(4, AccessKind.READ, 0)

    def test_on_finish_callback_fires(self):
        mem = make(4, 1)
        done = []
        mem.issue(0, AccessKind.READ, 0, on_finish=lambda a: done.append(a.state))
        mem.drain()
        assert done == [AccessState.COMPLETED]

    def test_run_until_idle_raises_on_stuck(self):
        class Staller(AccessController):
            def on_bank(self, mem, access, bank, slot):
                return ControlAction.RESTART  # never lets it finish

        mem = CFMemory(CFMConfig(n_procs=4), controller=Staller())
        mem.issue(0, AccessKind.READ, 0)
        with pytest.raises(RuntimeError):
            mem.run_until_idle(max_slots=100)

    def test_poke_block_validates_width(self):
        mem = make(4, 1)
        with pytest.raises(ValueError):
            mem.poke_block(0, Block.of_values([1]))


class TestControllerHooks:
    def test_abort_action_stops_access(self):
        class AbortAll(AccessController):
            def on_bank(self, mem, access, bank, slot):
                return ControlAction.ABORT

        mem = CFMemory(CFMConfig(n_procs=4), controller=AbortAll())
        acc = mem.issue(0, AccessKind.READ, 0)
        mem.run(2)
        assert acc.state is AccessState.ABORTED
        assert acc.final_action is ControlAction.ABORT

    def test_retry_action_marks_final_action(self):
        class RetryAll(AccessController):
            def on_bank(self, mem, access, bank, slot):
                return ControlAction.RETRY

        mem = CFMemory(CFMConfig(n_procs=4), controller=RetryAll())
        acc = mem.issue(0, AccessKind.READ, 0)
        mem.run(2)
        assert acc.state is AccessState.ABORTED
        assert acc.final_action is ControlAction.RETRY
        assert acc.restarts == 1

    def test_restart_collects_from_current_bank(self):
        class RestartOnce(AccessController):
            def __init__(self):
                self.fired = False

            def on_bank(self, mem, access, bank, slot):
                if not self.fired and access.words_done == 2:
                    self.fired = True
                    return ControlAction.RESTART
                return ControlAction.PROCEED

        mem = CFMemory(CFMConfig(n_procs=4), controller=RestartOnce())
        acc = mem.issue(0, AccessKind.READ, 0)
        mem.drain()
        assert acc.state is AccessState.COMPLETED
        assert acc.restarts == 1
        assert acc.latency == 4 + 2  # two wasted slots before the restart

    def test_on_start_sees_first_bank(self):
        starts = []

        class Spy(AccessController):
            def on_start(self, mem, access, slot):
                starts.append((access.first_bank, slot))

        mem = CFMemory(CFMConfig(n_procs=4), controller=Spy())
        mem.run(2)
        mem.issue(1, AccessKind.READ, 0)
        mem.drain()
        assert starts == [(3, 2)]  # bank (2 + 1) mod 4 at slot 2

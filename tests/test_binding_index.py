"""Tests for the hierarchical active-binding index (§6.5.1)."""

import pytest

from repro.binding.index import ActiveBindingIndex, FlatBindingList
from repro.binding.region import AccessType, Region
from repro.sim.rng import make_rng


def random_region(rng, n_vars=3, span=256):
    var = f"v{int(rng.integers(0, n_vars))}"
    start = int(rng.integers(0, span - 1))
    width = int(rng.integers(1, 16))
    return Region(var)[start : min(span, start + width)]


class TestCorrectness:
    def test_add_find_remove(self):
        idx = ActiveBindingIndex()
        idx.add(1, 10, Region("a")[0:8], AccessType.RW)
        hits = idx.find_conflicts(Region("a")[4:12], AccessType.RW)
        assert [h.bind_id for h in hits] == [1]
        idx.remove(1)
        assert idx.find_conflicts(Region("a")[4:12], AccessType.RW) == []

    def test_exclude_pid(self):
        idx = ActiveBindingIndex()
        idx.add(1, 10, Region("a")[0:8], AccessType.RW)
        assert idx.find_conflicts(Region("a")[0:8], AccessType.RW,
                                  exclude_pid=10) == []

    def test_whole_variable_binds_always_checked(self):
        idx = ActiveBindingIndex()
        idx.add(1, 10, Region("a"), AccessType.RW)  # no index range
        hits = idx.find_conflicts(Region("a")[100:101], AccessType.RW)
        assert [h.bind_id for h in hits] == [1]

    def test_whole_variable_query_sees_everything(self):
        idx = ActiveBindingIndex()
        idx.add(1, 10, Region("a")[200:208], AccessType.RW)
        hits = idx.find_conflicts(Region("a"), AccessType.RW)
        assert [h.bind_id for h in hits] == [1]

    def test_different_variables_never_probed(self):
        idx = ActiveBindingIndex()
        idx.add(1, 10, Region("a")[0:8], AccessType.RW)
        assert idx.find_conflicts(Region("b")[0:8], AccessType.RW) == []
        assert idx.probes == 0  # not even compared

    def test_duplicate_and_missing_ids_rejected(self):
        idx = ActiveBindingIndex()
        idx.add(1, 10, Region("a")[0:8], AccessType.RW)
        with pytest.raises(ValueError):
            idx.add(1, 10, Region("a")[0:8], AccessType.RW)
        with pytest.raises(ValueError):
            idx.remove(2)

    def test_agrees_with_flat_list_on_random_workload(self):
        """The index is an optimization: results identical to the flat list."""
        rng = make_rng(5)
        idx = ActiveBindingIndex(bin_width=16)
        flat = FlatBindingList()
        live = {}
        for i in range(300):
            if live and rng.random() < 0.3:
                bid = int(rng.choice(list(live)))
                idx.remove(bid)
                flat.remove(bid)
                del live[bid]
                continue
            region = random_region(rng)
            access = AccessType.RW if rng.random() < 0.5 else AccessType.RO
            a = {x.bind_id for x in idx.find_conflicts(region, access)}
            b = {x.bind_id for x in flat.find_conflicts(region, access)}
            assert a == b
            idx.add(i, i % 7, region, access)
            flat.add(i, i % 7, region, access)
            live[i] = True


class TestProbeReduction:
    def test_index_probes_fewer_than_flat(self):
        """§6.5.1's point: the hierarchy relaxes 'compare with all'."""
        rng = make_rng(9)
        idx = ActiveBindingIndex(bin_width=16)
        flat = FlatBindingList()
        for i in range(200):
            region = random_region(rng, n_vars=4, span=1024)
            idx.add(i, i, region, AccessType.RW)
            flat.add(i, i, region, AccessType.RW)
        for _ in range(100):
            q = random_region(rng, n_vars=4, span=1024)
            idx.find_conflicts(q, AccessType.RW)
            flat.find_conflicts(q, AccessType.RW)
        assert idx.probes < flat.probes / 5  # an order-of-magnitude saving

    def test_invalid_bin_width(self):
        with pytest.raises(ValueError):
            ActiveBindingIndex(bin_width=0)

"""Tests for lock transfer on the cache protocol (§5.3.2, Figs 5.4/5.5)."""

import pytest

from repro.cache.locks import CacheLockSystem, MultiLockSystem


class TestSimpleLock:
    @pytest.mark.parametrize("n", [2, 4, 8])
    def test_all_contenders_acquire(self, n):
        sys_ = CacheLockSystem(n, cs_cycles=6)
        accs = sys_.run()
        assert len(accs) == n
        assert sys_.mutual_exclusion_held
        sys_.cache.check_coherence_invariant()

    def test_spinning_is_cache_local(self):
        """§5.3.2: waiting processors spin on their own valid copy —
        cache hits, not memory traffic."""
        sys_ = CacheLockSystem(4, cs_cycles=40)
        accs = sys_.run()
        late = [a for a in accs if a.wait > 50]
        assert late, "with 40-cycle critical sections someone waited"
        for a in late:
            assert a.spin_reads > 0

    def test_lock_transfer_costs_about_three_accesses(self):
        """Fig 5.4: a transfer ≈ write-back + read + read-invalidate.

        Measured: the gap between one release and the next acquisition is
        a small multiple of β, independent of the number of waiters."""
        sys_ = CacheLockSystem(4, cs_cycles=10)
        accs = sys_.run()
        beta = sys_.cache.cfg.block_access_time
        ordered = sorted(accs, key=lambda a: a.acquired_slot)
        for prev, nxt in zip(ordered, ordered[1:]):
            gap = nxt.acquired_slot - prev.released_slot
            assert gap <= 8 * beta  # bounded transfer, no unbounded storm

    def test_uncontended_lock_fast(self):
        sys_ = CacheLockSystem(4, contenders=[0], cs_cycles=3)
        accs = sys_.run()
        beta = sys_.cache.cfg.block_access_time
        # read miss + RI + WB ≈ 3 accesses.
        assert accs[0].wait <= 4 * beta


class TestMultiLock:
    def test_overlapping_patterns_exclude(self):
        ml = MultiLockSystem(
            8,
            {
                0: [1, 1, 0, 0, 0, 0, 0, 0],
                1: [0, 1, 1, 0, 0, 0, 0, 0],
                2: [0, 0, 1, 1, 0, 0, 0, 0],
            },
            cs_cycles=10,
        )
        accs = ml.run()
        assert len(accs) == 3
        assert ml.overlapping_exclusion_held()
        ml.cache.check_coherence_invariant()

    def test_disjoint_patterns_can_overlap_in_time(self):
        ml = MultiLockSystem(
            8,
            {
                0: [1, 1, 0, 0, 0, 0, 0, 0],
                4: [0, 0, 0, 0, 1, 1, 0, 0],
            },
            cs_cycles=30,
        )
        accs = ml.run()
        assert len(accs) == 2
        a, b = sorted(accs, key=lambda x: x.acquired_slot)
        # With long critical sections and disjoint locks, the second
        # holder acquires before the first releases.
        assert b.acquired_slot < a.released_slot

    def test_atomic_multiple_lock_prevents_deadlock(self):
        """The dining-philosophers shape: neighbours share a bit; atomic
        all-or-nothing acquisition means everyone eventually eats."""
        n = 8
        patterns = {}
        for i in range(4):
            pat = [0] * n
            pat[2 * i] = 1
            pat[(2 * i + 2) % n] = 1
            patterns[i] = pat
        ml = MultiLockSystem(n, patterns, cs_cycles=5)
        accs = ml.run()
        assert len(accs) == 4
        assert ml.overlapping_exclusion_held()

"""Tests for the Address Tracking Table (§4.1.2, Fig 4.2)."""

import pytest

from repro.core.cfm import AccessKind
from repro.tracking.att import AddressTrackingTable


class TestInsertLookup:
    def test_entry_visible_in_age_window(self):
        att = AddressTrackingTable(capacity=7)
        att.insert(offset=5, op_id=1, kind=AccessKind.WRITE, slot=10)
        assert att.lookup(5, slot=11) != []
        assert att.lookup(5, slot=17) != []  # age 7 == capacity

    def test_entry_expires_after_capacity(self):
        att = AddressTrackingTable(capacity=7)
        att.insert(5, 1, AccessKind.WRITE, slot=10)
        att.prune(slot=18)  # age 8 > capacity
        assert att.lookup(5, slot=18) == []

    def test_age_zero_invisible_by_default(self):
        att = AddressTrackingTable(capacity=7)
        att.insert(5, 1, AccessKind.WRITE, slot=10)
        assert att.lookup(5, slot=10) == []  # min_age defaults to 1

    def test_lookup_filters_by_offset(self):
        att = AddressTrackingTable(capacity=7)
        att.insert(5, 1, AccessKind.WRITE, slot=0)
        assert att.lookup(6, slot=2) == []

    def test_lookup_excludes_own_op(self):
        att = AddressTrackingTable(capacity=7)
        att.insert(5, 1, AccessKind.WRITE, slot=0)
        assert att.lookup(5, slot=2, exclude_op=1) == []
        assert att.lookup(5, slot=2, exclude_op=2) != []

    def test_age_window_bounds(self):
        att = AddressTrackingTable(capacity=7)
        att.insert(5, 1, AccessKind.WRITE, slot=0)  # age at slot 4 is 4
        assert att.lookup(5, slot=4, min_age=1, max_age=3) == []
        assert att.lookup(5, slot=4, min_age=4, max_age=4) != []
        assert att.lookup(5, slot=4, min_age=5) == []

    def test_plain_reads_never_insert(self):
        att = AddressTrackingTable(capacity=7)
        with pytest.raises(ValueError):
            att.insert(5, 1, AccessKind.READ, slot=0)

    def test_read_invalidate_inserts(self):
        """The Chapter 5 protocol records read-invalidates too (§5.2.4)."""
        att = AddressTrackingTable(capacity=7)
        att.insert(5, 1, AccessKind.READ_INVALIDATE, slot=0)
        assert att.lookup(5, slot=1) != []


class TestQueueSemantics:
    def test_entries_at_ordered_youngest_first(self):
        att = AddressTrackingTable(capacity=7)
        att.insert(1, 1, AccessKind.WRITE, slot=0)
        att.insert(2, 2, AccessKind.WRITE, slot=3)
        entries = att.entries_at(slot=4)
        assert [e.offset for e in entries] == [2, 1]

    def test_len_counts_entries(self):
        att = AddressTrackingTable(capacity=7)
        att.insert(1, 1, AccessKind.WRITE, slot=0)
        att.insert(2, 2, AccessKind.WRITE, slot=1)
        assert len(att) == 2

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            AddressTrackingTable(0)

    def test_negative_min_age_rejected(self):
        att = AddressTrackingTable(4)
        with pytest.raises(ValueError):
            att.lookup(0, slot=0, min_age=-1)

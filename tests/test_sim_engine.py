"""Tests for the discrete-event engine and slot clock."""

import pytest

from repro.sim.engine import Engine, SlotClock


class TestEngine:
    def test_events_fire_in_time_order(self):
        eng = Engine()
        out = []
        eng.schedule(5, lambda: out.append("late"))
        eng.schedule(1, lambda: out.append("early"))
        eng.run()
        assert out == ["early", "late"]

    def test_simultaneous_events_fire_in_scheduling_order(self):
        eng = Engine()
        out = []
        for i in range(5):
            eng.schedule(3, lambda i=i: out.append(i))
        eng.run()
        assert out == [0, 1, 2, 3, 4]

    def test_now_advances_to_event_time(self):
        eng = Engine()
        eng.schedule(7, lambda: None)
        eng.run()
        assert eng.now == 7

    def test_run_until_stops_before_later_events(self):
        eng = Engine()
        out = []
        eng.schedule(3, lambda: out.append("a"))
        eng.schedule(10, lambda: out.append("b"))
        eng.run(until=5)
        assert out == ["a"]
        assert eng.now == 5
        eng.run()
        assert out == ["a", "b"]

    def test_cancelled_event_is_skipped(self):
        eng = Engine()
        out = []
        ev = eng.schedule(2, lambda: out.append("x"))
        ev.cancel()
        eng.schedule(3, lambda: out.append("y"))
        eng.run()
        assert out == ["y"]

    def test_events_scheduled_during_run(self):
        eng = Engine()
        out = []

        def first():
            out.append("first")
            eng.schedule(2, lambda: out.append("second"))

        eng.schedule(1, first)
        eng.run()
        assert out == ["first", "second"]
        assert eng.now == 3

    def test_negative_delay_rejected(self):
        eng = Engine()
        with pytest.raises(ValueError):
            eng.schedule(-1, lambda: None)

    def test_schedule_in_past_rejected(self):
        eng = Engine()
        eng.schedule(5, lambda: None)
        eng.run()
        with pytest.raises(ValueError):
            eng.schedule_at(2, lambda: None)

    def test_pending_counts_live_events(self):
        eng = Engine()
        e1 = eng.schedule(1, lambda: None)
        eng.schedule(2, lambda: None)
        e1.cancel()
        assert eng.pending() == 1

    def test_step_returns_false_when_empty(self):
        assert Engine().step() is False

    def test_run_until_advances_now_on_empty_heap(self):
        eng = Engine()
        eng.run(until=10)
        assert eng.now == 10

    def test_run_until_advances_now_when_heap_all_cancelled(self):
        # Regression: a heap holding only cancelled events used to leave
        # `now` behind `until` (peek_time() -> None broke out of the loop
        # without the empty-heap handling).
        eng = Engine()
        ev = eng.schedule(3, lambda: None)
        ev.cancel()
        eng.run(until=10)
        assert eng.now == 10
        assert eng.pending() == 0

    def test_run_until_cancelled_past_until_still_advances(self):
        eng = Engine()
        live = []
        eng.schedule(2, lambda: live.append("a"))
        ev = eng.schedule(50, lambda: live.append("never"))
        ev.cancel()
        eng.run(until=10)
        assert live == ["a"]
        assert eng.now == 10

    def test_run_until_never_moves_time_backwards(self):
        eng = Engine()
        eng.schedule(7, lambda: None)
        eng.run()
        assert eng.now == 7
        eng.run(until=3)
        assert eng.now == 7

    def test_probe_observes_dispatches(self):
        from repro.obs import RecordingProbe

        eng = Engine()
        probe = RecordingProbe()
        eng.probe = probe
        eng.schedule(2, lambda: None)
        eng.schedule(5, lambda: None)
        eng.run()
        times = [ev.t for ev in probe.select("engine", "dispatch")]
        assert times == [2, 5]


class TestSlotClock:
    def test_subscribers_fire_each_slot_in_order(self):
        clk = SlotClock()
        out = []
        clk.subscribe(lambda s: out.append(("a", s)))
        clk.subscribe(lambda s: out.append(("b", s)))
        clk.advance(2)
        assert out == [("a", 1), ("b", 1), ("a", 2), ("b", 2)]

    def test_phase_wraps_at_period(self):
        clk = SlotClock(period=4)
        clk.advance(6)
        assert clk.slot == 6
        assert clk.phase == 2

    def test_phase_without_period_is_slot(self):
        clk = SlotClock()
        clk.advance(9)
        assert clk.phase == 9

    def test_invalid_period_rejected(self):
        with pytest.raises(ValueError):
            SlotClock(period=0)

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            SlotClock().advance(-1)

    def test_reset_keeps_subscribers(self):
        clk = SlotClock()
        out = []
        clk.subscribe(out.append)
        clk.advance(1)
        clk.reset()
        clk.advance(1)
        assert out == [1, 1]

    def test_probe_observes_ticks_with_phase(self):
        from repro.obs import RecordingProbe

        clk = SlotClock(period=2)
        probe = RecordingProbe()
        clk.probe = probe
        clk.advance(3)
        ticks = probe.select("clock", "tick")
        assert [ev.t for ev in ticks] == [1, 2, 3]
        assert [ev.fields["phase"] for ev in ticks] == [1, 0, 1]

"""Stage-3 fastpath: the vectorized epoch engine and the engine seam.

Four proof obligations, mirroring ISSUE acceptance:

* **engine seam** — ``resolve_engine`` and the per-layer ``engine=``
  constructor/dispatch surface behave identically everywhere.
* **three-way differential** — reference / batch / vectorized produce
  bit-identical full-state fingerprints on every layer, across shapes
  from (4, 1) to (128, 32), with and without a zero-fault plan attached,
  and under a degraded bank (the batch engines must detect degraded mode
  and tick per-slot — the latent bug this PR fixes).
* **plan algebra** — :func:`plan_epoch` / :func:`bank_occupancy` /
  :func:`att_windows` match brute-force per-slot simulation of the same
  tables, and the ATT windows match the real
  :class:`~repro.tracking.att.AddressTrackingTable` contract.
* **observability** — HotpathProfiler per-layer counter sums equal the
  slots each layer advanced (``vector.fallbacks`` excluded: it is an
  event count, not slot-denominated), and every engine raises
  :class:`SimulationTimeout` at the identical strict boundary slot.

Satellites ride along: bounded table caches + degraded-table aliasing,
the partial bench-document contract, and the ``--engine`` CLI surface.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

from repro.cache.protocol import CacheSystem
from repro.core.cfm import AccessKind, CFMemory
from repro.core.config import CFMConfig
from repro.faults.chaos import (
    _build_cache_ops,
    _build_hier_ops,
    _cache_fingerprint,
    _cfm_fingerprint,
    _hier_fingerprint,
    fingerprint_cache,
    fingerprint_hier,
)
from repro.fastpath.engine import (
    DEFAULT_ENGINE,
    ENGINE_BATCH,
    ENGINE_REFERENCE,
    ENGINE_STACKED,
    ENGINE_VECTORIZED,
    ENGINES,
    resolve_engine,
    supported_layers,
    vector_available,
)
from repro.fastpath.tables import (
    TABLE_CACHE_SIZE,
    bank_orders,
    shift_permutations,
    slot_bank_table,
)
from repro.hierarchy.slot_accurate import SlotAccurateHierarchy
from repro.obs.hotpath import HotpathProfiler
from repro.obs.metrics import MetricsRegistry
from repro.sim.engine import SimulationTimeout

np = pytest.importorskip("numpy")

#: Engines each layer can drive (the stage-4 ``stacked`` engine is
#: CFM-only; the three originals run everywhere).
CFM_ENGINES = tuple(e for e in ENGINES if "cfm" in supported_layers(e))
CACHE_ENGINES = tuple(e for e in ENGINES if "cache" in supported_layers(e))
HIER_ENGINES = tuple(e for e in ENGINES if "hierarchy" in supported_layers(e))

from repro.fastpath.vector import (  # noqa: E402 - needs numpy
    att_windows,
    bank_occupancy,
    np_bank_orders,
    np_slot_bank_table,
    plan_epoch,
)


# --------------------------------------------------------------------------
# Engine registry


def test_resolve_engine_defaults_and_names():
    assert resolve_engine(None) == DEFAULT_ENGINE
    for name in ENGINES:
        assert resolve_engine(name) == name
    assert resolve_engine(None, default=ENGINE_REFERENCE) == ENGINE_REFERENCE


def test_resolve_engine_rejects_unknown():
    with pytest.raises(ValueError):
        resolve_engine("turbo")


def test_vector_available_here():
    # numpy imported at module top, so the gate must report available and
    # the vectorized name must resolve.
    assert vector_available()
    assert resolve_engine(ENGINE_VECTORIZED) == ENGINE_VECTORIZED


@pytest.mark.parametrize("engine", [None, *ENGINES])
def test_layer_constructors_accept_engine(engine):
    expect = resolve_engine(engine)
    assert CFMemory(CFMConfig(n_procs=4, bank_cycle=1), engine=engine).engine \
        == expect
    if engine is None or "cache" in supported_layers(engine):
        assert CacheSystem(4, engine=engine).engine == expect
        assert SlotAccurateHierarchy(2, 2, engine=engine).engine == expect
    else:
        # Layer-restricted engines fail at construction with a typed
        # error naming the layers that do support them.
        with pytest.raises(ValueError, match="supported layers"):
            CacheSystem(4, engine=engine)
        with pytest.raises(ValueError, match="supported layers"):
            SlotAccurateHierarchy(2, 2, engine=engine)


def test_layer_constructors_reject_unknown_engine():
    with pytest.raises(ValueError):
        CFMemory(CFMConfig(n_procs=4, bank_cycle=1), engine="turbo")
    with pytest.raises(ValueError):
        CacheSystem(4, engine="turbo")
    with pytest.raises(ValueError):
        SlotAccurateHierarchy(2, 2, engine="turbo")


# --------------------------------------------------------------------------
# Plan algebra vs brute force


def _brute_visits(n_banks, bank_cycle, slot, procs, words_done, limit):
    """Per-slot simulation of the AT schedule for one epoch."""
    table = slot_bank_table(n_banks, bank_cycle)
    orders = bank_orders(n_banks)
    banks_now = [table[slot % n_banks][p] for p in procs]
    remaining = [n_banks - w for w in words_done]
    finish_slots = [slot + r - 1 for r in remaining]
    target = min(min(finish_slots), limit)
    span = target - slot + 1
    steps = [min(r, span) for r in remaining]
    visits = []  # (access index, bank, visit slot)
    for i, first in enumerate(banks_now):
        for j in range(steps[i]):
            visits.append((i, orders[first][j], slot + j))
    return banks_now, remaining, finish_slots, target, steps, visits


@pytest.mark.parametrize("n_procs,bank_cycle", [(4, 1), (8, 2), (16, 4)])
def test_plan_epoch_matches_brute_force(n_procs, bank_cycle):
    n_banks = n_procs * bank_cycle
    rng = np.random.default_rng(n_banks)
    for _ in range(20):
        k = int(rng.integers(1, n_procs + 1))
        procs = np.sort(rng.choice(n_procs, size=k, replace=False))
        words_done = rng.integers(0, n_banks, size=k)
        slot = int(rng.integers(0, 3 * n_banks))
        limit = slot + int(rng.integers(0, 2 * n_banks))
        plan = plan_epoch(n_banks, bank_cycle, slot,
                          procs.astype(np.intp), words_done.astype(np.intp),
                          limit)
        banks_now, remaining, finish_slots, target, steps, _ = _brute_visits(
            n_banks, bank_cycle, slot, procs.tolist(), words_done.tolist(),
            limit)
        assert plan.banks_now.tolist() == banks_now
        assert plan.finish_slots.tolist() == finish_slots
        assert plan.target == target
        assert plan.span == target - slot + 1
        assert plan.steps.tolist() == steps
        assert plan.finishers.tolist() == [
            i for i in range(k) if steps[i] == remaining[i]
        ]


@pytest.mark.parametrize("n_procs,bank_cycle", [(4, 1), (8, 2), (16, 4)])
def test_bank_occupancy_matches_brute_force(n_procs, bank_cycle):
    n_banks = n_procs * bank_cycle
    rng = np.random.default_rng(7 * n_banks)
    for _ in range(20):
        k = int(rng.integers(1, n_procs + 1))
        procs = np.sort(rng.choice(n_procs, size=k, replace=False))
        words_done = rng.integers(0, n_banks, size=k)
        slot = int(rng.integers(0, 3 * n_banks))
        limit = slot + int(rng.integers(0, 2 * n_banks))
        plan = plan_epoch(n_banks, bank_cycle, slot,
                          procs.astype(np.intp), words_done.astype(np.intp),
                          limit)
        first_slot, busy_until = bank_occupancy(plan, n_banks, bank_cycle)
        _, _, _, _, _, visits = _brute_visits(
            n_banks, bank_cycle, slot, procs.tolist(), words_done.tolist(),
            limit)
        exp_first = [-1] * n_banks
        exp_busy = [-1] * n_banks
        seen = {}
        for _, bank, at in visits:
            # Row injectivity: no two accesses may claim one (bank, slot).
            assert (bank, at) not in seen
            seen[(bank, at)] = True
            if exp_first[bank] == -1 or at < exp_first[bank]:
                exp_first[bank] = at
            exp_busy[bank] = max(exp_busy[bank], at + bank_cycle - 1)
        assert first_slot.tolist() == exp_first
        assert busy_until.tolist() == exp_busy


def test_att_windows_match_tracking_table_contract():
    from repro.tracking.att import AddressTrackingTable

    n_banks, bank_cycle = 8, 2
    capacity = max(1, n_banks - 1)
    procs = np.array([0, 1, 2, 3], dtype=np.intp)
    words_done = np.array([0, 3, 0, 5], dtype=np.intp)
    slot = 11
    plan = plan_epoch(n_banks, bank_cycle, slot, procs, words_done,
                      slot + 4 * n_banks)
    starters, inserts, expiries = att_windows(plan, capacity)
    # Only accesses performing their first word open a window.
    assert starters.tolist() == [0, 2]
    assert inserts.tolist() == [slot, slot]
    assert expiries.tolist() == [slot + capacity, slot + capacity]
    # The windows match the real table: live at expiry, gone one later.
    att = AddressTrackingTable(capacity)
    for idx, at, until in zip(starters.tolist(), inserts.tolist(),
                              expiries.tolist()):
        offset = 100 + idx
        att.insert(offset, op_id=idx, kind=AccessKind.WRITE, slot=at)
        assert att.has_entry(offset, at)
        assert att.has_entry(offset, until)
        assert not att.has_entry(offset, until + 1)


def test_np_tables_match_tuple_tables():
    for n_banks, bank_cycle in [(4, 1), (8, 2), (16, 4)]:
        assert np_slot_bank_table(n_banks, bank_cycle).tolist() == [
            list(row) for row in slot_bank_table(n_banks, bank_cycle)
        ]
        assert np_bank_orders(n_banks).tolist() == [
            list(row) for row in bank_orders(n_banks)
        ]
        assert not np_slot_bank_table(n_banks, bank_cycle).flags.writeable
        assert not np_bank_orders(n_banks).flags.writeable


# --------------------------------------------------------------------------
# Three-way engine differential (satellite 4)

CFM_SHAPES = [(4, 1), (8, 2), (16, 4), (32, 8), (64, 16), (128, 32)]
#: Shapes small enough to also sweep with a zero-fault plan attached.
CFM_ZERO_SHAPES = [(4, 1), (8, 2), (16, 4), (32, 8)]


@pytest.mark.parametrize("n_procs,bank_cycle", CFM_SHAPES)
def test_cfm_three_way_bit_identical(n_procs, bank_cycle):
    zeros = (False, True) if (n_procs, bank_cycle) in CFM_ZERO_SHAPES \
        else (False,)
    for attach_zero in zeros:
        prints = [
            _cfm_fingerprint(n_procs, bank_cycle, engine, attach_zero)
            for engine in CFM_ENGINES
        ]
        assert all(p == prints[0] for p in prints), (
            n_procs, bank_cycle, attach_zero)


@pytest.mark.parametrize("attach_zero", [False, True])
def test_cache_three_way_bit_identical(attach_zero):
    prints = [
        _cache_fingerprint(4, rounds=4, seed=5, engine=engine,
                           attach_zero=attach_zero)
        for engine in CACHE_ENGINES
    ]
    assert all(p == prints[0] for p in prints)


@pytest.mark.parametrize("attach_zero", [False, True])
def test_hierarchy_three_way_bit_identical(attach_zero):
    prints = [
        _hier_fingerprint(2, 2, rounds=3, seed=7, engine=engine,
                          attach_zero=attach_zero)
        for engine in HIER_ENGINES
    ]
    assert all(p == prints[0] for p in prints)


def _degraded_cache_fingerprint(engine):
    sys_ = CacheSystem(4, bank_cycle=2)
    sys_.mem.degrade_bank(3)
    ops = _build_cache_ops(sys_, 4, rounds=5, seed=9)
    sys_.run_ops_engine(ops, engine=engine)
    return fingerprint_cache(sys_, ops)


def test_cache_degraded_three_way_bit_identical():
    """Regression for the latent stage-2 bug: the batch classifier never
    checked degraded mode, but its span replayer indexes the *healthy*
    period-b table — under the period-(b-1) degraded schedule it would
    read the wrong banks.  Both fast engines must now detect the degraded
    module and tick per-slot, matching the reference bit for bit."""
    prints = [_degraded_cache_fingerprint(engine) for engine in CACHE_ENGINES]
    assert all(p == prints[0] for p in prints)


def _degraded_hier_fingerprint(engine):
    hier = SlotAccurateHierarchy(2, 2, bank_cycle=2)
    hier.clusters[0].mem.degrade_bank(2)
    ops = _build_hier_ops(hier, rounds=3, seed=11)
    hier.run_ops_engine(ops, engine=engine)
    return fingerprint_hier(hier, ops)


def test_hierarchy_degraded_three_way_bit_identical():
    prints = [_degraded_hier_fingerprint(engine) for engine in HIER_ENGINES]
    assert all(p == prints[0] for p in prints)


def test_degraded_cache_counts_tick_degraded():
    hp = HotpathProfiler()
    sys_ = CacheSystem(4, bank_cycle=2, hotpath=hp)
    sys_.mem.degrade_bank(3)
    ops = _build_cache_ops(sys_, 4, rounds=2, seed=9)
    sys_.run_ops_batch(ops)
    events = hp.snapshot()["cache"]
    assert events.get("tick.degraded", 0) > 0
    assert events.get("batched_slots", 0) == 0


# --------------------------------------------------------------------------
# Metrics snapshots identical across engines (satellite 4)


def _metered_cfm(engine):
    reg = MetricsRegistry()
    mem = CFMemory(CFMConfig(n_procs=8, bank_cycle=2), metrics=reg)
    done = []
    for p in range(8):
        mem.issue(p, AccessKind.READ, offset=p % 3,
                  on_finish=lambda a: done.append((a.proc, a.complete_slot)))
    mem.run_engine(40, engine=engine)
    return done, mem.slot, reg.snapshot()


def test_cfm_metrics_snapshot_identical_across_engines():
    """Observers pin the reference path inside every engine, so attached
    metrics must see the identical event stream regardless of strategy."""
    prints = [_metered_cfm(engine) for engine in CFM_ENGINES]
    assert all(p == prints[0] for p in prints)
    assert prints[0][2]  # the registry really was fed


# --------------------------------------------------------------------------
# Profiler counter sums (satellite 4)


def _slot_sum(events):
    """Sum of slot-denominated counters: everything except the auxiliary
    ``vector.fallbacks`` event count."""
    return sum(n for name, n in events.items() if name != "vector.fallbacks")


def test_vector_counter_sum_equals_cfm_slots():
    hp = HotpathProfiler()
    mem = CFMemory(CFMConfig(n_procs=8, bank_cycle=2))
    mem.hotpath = hp

    def reissue(acc):
        mem.issue(acc.proc, AccessKind.READ, offset=acc.proc % 4,
                  on_finish=reissue)

    for p in range(8):
        mem.issue(p, AccessKind.READ, offset=p % 4, on_finish=reissue)
    mem.run_engine(500, engine=ENGINE_VECTORIZED)
    events = hp.snapshot()["cfm"]
    assert events.get("vector.batched_slots", 0) > 0
    assert _slot_sum(events) == mem.slot == 500


def test_vector_counter_sum_equals_cache_slots():
    hp = HotpathProfiler()
    sys_ = CacheSystem(8, bank_cycle=2, hotpath=hp)
    ops = _build_cache_ops(sys_, 8, rounds=4, seed=3)
    sys_.run_ops_vector(ops)
    events = hp.snapshot()["cache"]
    assert events.get("vector.batched_slots", 0) > 0
    assert _slot_sum(events) == sys_.slot


def test_vector_counter_sum_equals_hier_slots():
    hp = HotpathProfiler()
    hier = SlotAccurateHierarchy(2, 2, bank_cycle=2, hotpath=hp)
    ops = _build_hier_ops(hier, rounds=3, seed=5)
    hier.run_ops_vector(ops)
    events = hp.snapshot()["hier"]
    assert events.get("vector.batched_slots", 0) > 0
    assert _slot_sum(events) == hier.slot


def test_vector_fallback_counted_but_not_slot_denominated():
    """With metrics attached the vectorized driver must fall back once,
    the slots must all be accounted by the batch/tick counters, and the
    fallback event itself must not perturb the slot sum."""
    hp = HotpathProfiler()
    mem = CFMemory(CFMConfig(n_procs=4, bank_cycle=1),
                   metrics=MetricsRegistry())
    mem.hotpath = hp
    mem.issue(0, AccessKind.READ, offset=0)
    mem.run_engine(50, engine=ENGINE_VECTORIZED)
    events = hp.snapshot()["cfm"]
    assert events.get("vector.fallbacks") == 1
    assert events.get("vector.batched_slots", 0) == 0
    assert _slot_sum(events) == mem.slot == 50


# --------------------------------------------------------------------------
# Strict timeout boundary, identical across engines (satellite 1)


@pytest.mark.parametrize("engine", CACHE_ENGINES)
def test_cache_timeout_identical_slot_across_engines(engine):
    sys_ = CacheSystem(4)
    sys_.run_ops([sys_.acquire(0, 0)])  # unmatched acquire wedges proc 1
    start = sys_.slot
    blocked = sys_.store(1, 0, {0: 9})
    with pytest.raises(SimulationTimeout) as exc:
        sys_.run_ops_engine([blocked], max_slots=300, engine=engine)
    assert exc.value.slot == start + 300
    assert exc.value.max_slots == 300
    assert sys_.slot == start + 300


def test_cfm_run_until_idle_strict_boundary():
    mem = CFMemory(CFMConfig(n_procs=4, bank_cycle=1))  # b = 4
    mem.issue(0, AccessKind.READ, offset=0)
    with pytest.raises(SimulationTimeout) as exc:
        mem.run_until_idle(max_slots=2)
    assert exc.value.slot == 2
    # A read needs exactly b slots; a budget of b completes without raising.
    mem2 = CFMemory(CFMConfig(n_procs=4, bank_cycle=1))
    mem2.issue(0, AccessKind.READ, offset=0)
    assert mem2.run_until_idle(max_slots=4) == 4


# --------------------------------------------------------------------------
# Bounded table caches + degraded aliasing (satellite 2)


def test_table_caches_are_bounded():
    from repro.faults.degrade import degraded_slot_bank_table

    for fn in (slot_bank_table, bank_orders, shift_permutations,
               degraded_slot_bank_table, np_slot_bank_table, np_bank_orders):
        assert fn.cache_info().maxsize == TABLE_CACHE_SIZE, fn.__name__


def test_degraded_table_cannot_alias_genuine_shape():
    """A degraded period-(b-1) table can never collide with a genuine
    (b-1)-bank shape's cache entry.  Twice over: the caches are separate
    objects, and the contents are disjoint — degrading requires c >= 2
    with c | b, while a genuine (b-1)-bank table needs c | (b-1); c
    dividing both b and b-1 forces c = 1.  Concretely, the degraded
    table's rows still name *physical* banks (including b-1, excluding
    the dead one), which no genuine (b-1)-bank table contains."""
    from repro.faults.degrade import degraded_slot_bank_table

    n_banks, bank_cycle, dead = 8, 2, 3
    degraded = degraded_slot_bank_table(n_banks, bank_cycle, dead)
    assert len(degraded) == n_banks - 1  # period b-1
    values = {bank for row in degraded for bank in row}
    assert dead not in values
    assert n_banks - 1 in values  # physical bank 7 still addressed
    # Every genuine 7-bank shape (only c=1 and c=7 divide 7) stays in
    # range [0, 7) — it can never equal the degraded table.
    for c in (1, 7):
        genuine = slot_bank_table(n_banks - 1, c)
        assert all(bank < n_banks - 1 for row in genuine for bank in row)
        assert genuine != degraded
    # And any c >= 2 that could degrade an 8-bank module cannot describe
    # a genuine 7-bank shape at all.
    with pytest.raises(ValueError):
        slot_bank_table(n_banks - 1, bank_cycle)
    # Separate lru_caches: a degraded lookup never seeds the healthy one.
    assert degraded_slot_bank_table is not slot_bank_table


# --------------------------------------------------------------------------
# Partial bench documents (satellite 3)


def test_sweep_marks_partial_on_worker_failure():
    from repro.fastpath.parallel import sweep
    from repro.obs.bench import benchmark_specs

    good = benchmark_specs("quick", quick=True)[0]
    bad = {"system": "no_such_system", "params": {}}
    doc = sweep([good, bad], jobs=1, name="quick", quick=True)
    assert doc["partial"] is True
    assert len(doc["failures"]) == 1
    assert "no_such_system" in doc["failures"][0]["error"]
    assert len(doc["runs"]) == 1  # the surviving run is preserved


def test_sweep_without_failures_is_not_partial():
    from repro.fastpath.parallel import sweep
    from repro.obs.bench import benchmark_specs

    doc = sweep(benchmark_specs("quick", quick=True)[:1], jobs=1,
                name="quick", quick=True)
    assert "partial" not in doc
    assert "failures" not in doc


def _load_check_perf():
    path = Path(__file__).resolve().parent.parent / "benchmarks" \
        / "check_perf.py"
    spec = importlib.util.spec_from_file_location("check_perf", path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def test_check_perf_rejects_partial_documents(tmp_path):
    mod = _load_check_perf()
    doc = {
        "bench": "quick", "schema": "repro-bench/1", "quick": True,
        "runs": [], "partial": True,
        "failures": [{"spec": {}, "error": "boom"}],
        "timing": {"wall_time_s": 1.0, "jobs": 1, "runs": []},
    }
    path = tmp_path / "BENCH_quick.json"
    path.write_text(json.dumps(doc))
    with pytest.raises(SystemExit, match="partial"):
        mod.main([str(path)])
    # --update must refuse to bake a partial doc into a baseline.
    baseline = tmp_path / "baseline.json"
    with pytest.raises(SystemExit, match="partial"):
        mod.main([str(path), "--update", "--baseline", str(baseline)])
    assert not baseline.exists()


def test_check_perf_rejects_partial_baseline(tmp_path):
    mod = _load_check_perf()
    ok = {
        "bench": "quick", "schema": "repro-bench/1", "quick": True,
        "runs": [], "timing": {"wall_time_s": 1.0, "jobs": 1, "runs": []},
    }
    doc_path = tmp_path / "BENCH_quick.json"
    doc_path.write_text(json.dumps(ok))
    partial = dict(ok)
    partial["partial"] = True
    partial["failures"] = [{"spec": {}, "error": "boom"}]
    base_path = tmp_path / "baseline.json"
    base_path.write_text(json.dumps(partial))
    with pytest.raises(SystemExit, match="partial"):
        mod.main([str(doc_path), "--baseline", str(base_path)])


# --------------------------------------------------------------------------
# CLI surface (tentpole: repro bench --engine)


def test_cli_bench_engine_flag(tmp_path):
    from repro.cli import main

    assert main(["bench", "--quick", "--engine", "batch",
                 "--out", str(tmp_path)]) == 0
    doc = json.loads((tmp_path / "BENCH_quick.json").read_text())
    seam = {r["system"]: r for r in doc["runs"]
            if r["system"] in {"cfm", "cache", "hierarchy"}}
    assert set(seam) == {"cfm", "cache", "hierarchy"}
    for run in seam.values():
        assert run["params"]["engine"] == "batch"
    # Non-seam systems never grow an engine param.
    for run in doc["runs"]:
        if run["system"] not in seam:
            assert "engine" not in run["params"]


def test_cli_bench_rejects_unknown_engine(capsys):
    from repro.cli import main

    with pytest.raises(SystemExit):
        main(["bench", "--quick", "--engine", "turbo"])

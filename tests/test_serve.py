"""The serving layer's contract, end to end.

Pinned here (mirrors the invariants listed in ``repro/serve/__init__.py``):

1. **Bit-identity** — a report served through the sharded pool equals
   :func:`repro.obs.bench.run_spec` run serially, after a JSON round-trip
   (what actually crosses the wire).
2. **Typed faults are responses** — a faulted request returns
   ``ok=False`` with a typed error payload, and the worker that served it
   answers the next request.
3. **Backpressure** — in-flight depth never exceeds ``max_inflight``.
4. **Deterministic routing** — shard assignment is a pure function of the
   spec's shape, and warm-shape ownership partitions the shape set.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.serve import (
    DEFAULT_WARM_SHAPES,
    RequestError,
    ShardedWorkerPool,
    SimulationService,
    owned_shapes,
    serve_worker,
    shape_of,
    shard_for,
    shard_for_shape,
    validate_request,
)

CFM_PARAMS = {"n_procs": 4, "bank_cycle": 1, "cycles": 200}
DEAD_BANK_INJECT = {
    # (4,1) has no b-1 schedule: bank death must surface DegradedModeError.
    "events": [{"kind": "bank_dead", "start": 3, "duration": 1, "target": 1,
                "extra": 0}],
}


def _normalized(doc):
    return json.loads(json.dumps(doc, sort_keys=True))


# --------------------------------------------------------------------------
# Validation


class TestValidateRequest:
    def test_minimal_request_fills_defaults(self):
        req = validate_request({"id": 7, "system": "cfm",
                                "params": dict(CFM_PARAMS)})
        assert req.id == "7"
        assert req.tenant == "anonymous"
        assert req.spec == {"system": "cfm", "params": CFM_PARAMS}

    def test_missing_id_uses_default(self):
        req = validate_request({"system": "cfm", "params": dict(CFM_PARAMS)},
                               default_id="req-9")
        assert req.id == "req-9"

    @pytest.mark.parametrize("bad, fragment", [
        ({"id": "x", "system": "no_such"}, "unknown system"),
        ({"id": "x", "system": "cfm", "params": {"frob": 1}}, "unknown param"),
        ({"id": "x", "system": "cfm", "params": {"probe": 1}}, "cannot be served"),
        ({"id": "x", "system": "cfm", "params": {"n_procs": [4]}}, "JSON scalar"),
        ({"id": "x", "system": "cfm", "params": dict(CFM_PARAMS),
          "extra_field": 1}, "unknown request field"),
        ({"id": "x", "system": "cfm", "tenant": ""}, "tenant"),
        ({"id": "x", "system": "cache",
          "inject": {"kinds": ["bank_stuck"]}}, "only served for system 'cfm'"),
        ({"id": "x", "system": "cfm",
          "inject": {"kinds": ["not_a_kind"]}}, "inject.kinds"),
        ({"id": "x", "system": "cfm",
          "inject": {"events": [{"kind": "bad_kind"}]}}, "unknown fault kind"),
        ("just a string", "JSON object"),
    ])
    def test_rejects_malformed(self, bad, fragment):
        with pytest.raises(RequestError, match=fragment):
            validate_request(bad)

    def test_inject_validates_and_normalizes(self):
        req = validate_request({
            "id": "x", "system": "cfm", "params": dict(CFM_PARAMS),
            "inject": dict(DEAD_BANK_INJECT),
        })
        (event,) = req.inject["events"]
        assert event == {"kind": "bank_dead", "target": 1, "start": 3,
                         "duration": 1, "extra": 0}
        assert req.payload["inject"]["seed"] == 0


# --------------------------------------------------------------------------
# Shard routing


class TestShardRouting:
    def test_routing_is_deterministic_and_in_range(self):
        for n_shards in (1, 2, 4, 7):
            for shape in DEFAULT_WARM_SHAPES:
                s = shard_for_shape(shape, n_shards)
                assert 0 <= s < n_shards
                assert s == shard_for_shape(shape, n_shards)

    def test_shapes_spread_across_shards(self):
        owners = {shard_for_shape(s, 4) for s in DEFAULT_WARM_SHAPES}
        assert len(owners) >= 2  # the working set is not all on one worker

    def test_owned_shapes_partition_the_working_set(self):
        n_shards = 3
        owned = [owned_shapes(i, n_shards, DEFAULT_WARM_SHAPES)
                 for i in range(n_shards)]
        flat = [s for shapes in owned for s in shapes]
        assert sorted(flat) == sorted(DEFAULT_WARM_SHAPES)

    def test_shape_of_knows_the_table_keys(self):
        assert shape_of("cfm", {"n_procs": 8, "bank_cycle": 2}) == (16, 2)
        assert shape_of("cache", {"n_procs": 4}) == (4, 1)
        assert shape_of("hierarchy",
                        {"n_clusters": 2, "procs_per_cluster": 4,
                         "bank_cycle": 2}) == (8, 2)
        assert shape_of("sync_omega", {"n_ports": 8}) == (8, 1)
        assert shape_of("interleaved", {"n_procs": 8, "seed": 3}) is None

    def test_same_shape_same_shard_regardless_of_system(self):
        a = shard_for("cfm", {"n_procs": 8, "bank_cycle": 2}, 4)
        b = shard_for("cache", {"n_procs": 8, "bank_cycle": 2}, 4)
        assert a == b  # both route by the (16, 2) table key


# --------------------------------------------------------------------------
# Warm tables


class TestWarmTables:
    def test_warm_builds_every_table(self):
        from repro.fastpath.tables import warm_tables

        assert warm_tables([(4, 1), (8, 2)]) >= 6

    def test_bad_shape_raises_at_warm_time(self):
        from repro.fastpath.tables import warm_tables

        with pytest.raises(ValueError):
            warm_tables([(8, 3)])  # 8 % 3 != 0


# --------------------------------------------------------------------------
# Worker function (in-process: the failures-as-data boundary)


class TestServeWorker:
    def test_ok_report_matches_run_spec(self):
        from repro.obs.bench import run_spec

        result = serve_worker({"system": "cfm", "params": dict(CFM_PARAMS)})
        assert result["ok"] is True
        ref = run_spec({"system": "cfm", "params": dict(CFM_PARAMS)})
        assert _normalized(result["report"]) == _normalized(ref)
        assert result["wall_ms"] > 0

    def test_injected_dead_bank_is_a_typed_error(self):
        result = serve_worker({"system": "cfm", "params": dict(CFM_PARAMS),
                               "inject": dict(DEAD_BANK_INJECT, seed=0,
                                              rounds=2)})
        assert result["ok"] is False
        assert result["error"]["typed"] is True
        assert result["error"]["type"] == "DegradedModeError"

    def test_unknown_system_is_untyped_error_not_raise(self):
        result = serve_worker({"system": "no_such", "params": {}})
        assert result["ok"] is False
        assert result["error"]["typed"] is False
        assert "no_such" in result["error"]["message"]


# --------------------------------------------------------------------------
# Pool + service (shared pool: forked workers are the expensive part)


@pytest.fixture(scope="module")
def pool():
    with ShardedWorkerPool(n_shards=2) as p:
        yield p


class TestShardedWorkerPool:
    def test_run_sync_bit_identical_to_serial(self, pool):
        from repro.obs.bench import run_spec

        spec = {"system": "cache", "params": {"n_procs": 4, "rounds": 2}}
        result = pool.run_sync(dict(spec))
        assert result["ok"] is True
        assert _normalized(result["report"]) == _normalized(run_spec(spec))

    def test_fault_does_not_kill_the_worker(self, pool):
        shard = pool.shard_of("cfm", CFM_PARAMS)
        faulted = pool.run_sync({"system": "cfm", "params": dict(CFM_PARAMS),
                                 "inject": dict(DEAD_BANK_INJECT)})
        assert faulted["ok"] is False and faulted["error"]["typed"]
        after = pool.run_sync({"system": "cfm", "params": dict(CFM_PARAMS)})
        assert after["ok"] is True
        assert after["pid"] == faulted["pid"]  # same worker, still alive
        assert pool.shard_of("cfm", CFM_PARAMS) == shard

    def test_warm_shard_serves_from_hot_tables(self, pool):
        # Repeat of a warm shape: the second request must add no misses.
        spec = {"system": "cfm", "params": dict(CFM_PARAMS)}
        pool.run_sync(dict(spec))
        again = pool.run_sync(dict(spec))
        assert again["tables"]["misses"] == 0

    def test_dispatch_counters(self, pool):
        before = list(pool.dispatched)
        shard = pool.shard_of("cfm", CFM_PARAMS)
        pool.run_sync({"system": "cfm", "params": dict(CFM_PARAMS)})
        assert pool.dispatched[shard] == before[shard] + 1


class TestSimulationService:
    def test_streaming_tcp_roundtrip_with_faults_and_metrics(self, pool):
        async def scenario():
            service = SimulationService(pool=pool, max_inflight=3)
            server = await service.start("127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            requests = [
                {"id": f"r{i}", "tenant": f"t{i % 2}", "system": "cfm",
                 "params": dict(CFM_PARAMS, cycles=150 + i)}
                for i in range(6)
            ]
            requests.append({"id": "bad", "system": "no_such"})
            requests.append({"id": "flt", "system": "cfm",
                             "params": dict(CFM_PARAMS),
                             "inject": dict(DEAD_BANK_INJECT)})
            for req in requests:
                writer.write((json.dumps(req) + "\n").encode())
            await writer.drain()
            writer.write_eof()
            responses = {}
            while len(responses) < len(requests):
                line = await reader.readline()
                assert line, "connection closed early"
                resp = json.loads(line)
                responses[resp["id"]] = resp
            writer.close()
            server.close()
            await server.wait_closed()
            return service, responses

        service, responses = asyncio.run(scenario())
        assert all(responses[f"r{i}"]["ok"] for i in range(6))
        assert responses["bad"]["error"]["type"] == "RequestError"
        flt = responses["flt"]
        assert flt["ok"] is False and flt["error"]["typed"]
        assert flt["error"]["type"] == "DegradedModeError"
        # Backpressure: the reader never admitted more than max_inflight.
        assert service.peak_inflight <= 3
        snap = service.metrics_snapshot()
        assert snap["service"]["serve.requests"]["counts"]["total"] == 7
        assert snap["service"]["serve.requests"]["counts"]["rejected"] == 1
        assert {"t0", "t1"} <= set(snap["tenants"])
        t0 = snap["tenants"]["t0"]["requests"]["counts"]
        assert t0["total"] == t0["ok"] == 3

    def test_http_run_metrics_health_and_404(self, pool):
        async def scenario():
            service = SimulationService(pool=pool, max_inflight=4)
            server = await service.start("127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]

            async def http(method, path, body=None):
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", port)
                head = f"{method} {path} HTTP/1.1\r\nHost: t\r\n"
                if body is not None:
                    head += f"Content-Length: {len(body)}\r\n"
                writer.write(head.encode() + b"\r\n" + (body or b""))
                await writer.drain()
                data = await reader.read()
                writer.close()
                status = int(data.split(b" ", 2)[1])
                return status, json.loads(data.partition(b"\r\n\r\n")[2])

            body = json.dumps({"id": "h", "system": "cache",
                               "params": {"n_procs": 4, "rounds": 2}}).encode()
            run = await http("POST", "/run", body)
            health = await http("GET", "/healthz")
            metrics = await http("GET", "/metrics")
            missing = await http("GET", "/nope")
            bad = await http("POST", "/run",
                             json.dumps({"id": "x", "system": "no_such"})
                             .encode())
            server.close()
            await server.wait_closed()
            return run, health, metrics, missing, bad

        run, health, metrics, missing, bad = asyncio.run(scenario())
        assert run[0] == 200 and run[1]["ok"] and run[1]["id"] == "h"
        assert health == (200, {"ok": True})
        assert metrics[0] == 200 and "service" in metrics[1]
        assert missing[0] == 404
        assert bad[0] == 422 and bad[1]["error"]["type"] == "RequestError"

    def test_control_ops_and_bad_json(self, pool):
        async def scenario():
            service = SimulationService(pool=pool, max_inflight=2)
            ping = await service.process({"op": "ping", "id": "p"})
            bad_op = await service.process({"op": "frobnicate"})
            bad_json = await service.handle_line("{not json")
            return ping, bad_op, bad_json

        ping, bad_op, bad_json = asyncio.run(scenario())
        assert ping == {"id": "p", "ok": True, "op": "ping"}
        assert bad_op["ok"] is False and "unknown op" in (
            bad_op["error"]["message"])
        assert bad_json["ok"] is False
        assert "not valid JSON" in bad_json["error"]["message"]


# --------------------------------------------------------------------------
# CLI stdio mode (subprocess: the full `repro serve` surface)


class TestServeCli:
    def test_stdio_roundtrip(self, tmp_path):
        import os
        import subprocess
        import sys as _sys

        requests = "\n".join([
            json.dumps({"id": "a", "system": "cfm",
                        "params": dict(CFM_PARAMS)}),
            json.dumps({"id": "b", "system": "no_such"}),
        ]) + "\n"
        env = dict(os.environ)
        env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [_sys.executable, "-m", "repro", "serve", "--stdio",
             "--shards", "1", "--warm", "4x1"],
            input=requests, capture_output=True, text=True, timeout=120,
            env=env, cwd=os.path.dirname(os.path.dirname(__file__)),
        )
        assert proc.returncode == 0, proc.stderr
        responses = {json.loads(line)["id"]: json.loads(line)
                     for line in proc.stdout.splitlines()}
        assert responses["a"]["ok"] is True
        assert responses["b"]["error"]["type"] == "RequestError"
        assert "served 2 request(s)" in proc.stderr

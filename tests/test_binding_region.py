"""Tests for shared data regions and conflict detection (§6.2.2–6.3)."""

import pytest

from repro.binding.region import AccessType, DimRange, Region, regions_conflict


class TestDimRange:
    def test_membership(self):
        r = DimRange(0, 10, 3)  # {0, 3, 6, 9}
        assert 0 in r and 9 in r
        assert 1 not in r and 10 not in r
        assert r.count() == 4
        assert r.last == 9

    def test_single(self):
        r = DimRange.single(5)
        assert 5 in r
        assert r.count() == 1

    def test_contiguous_intersection(self):
        assert DimRange(0, 10).intersects(DimRange(5, 15))
        assert not DimRange(0, 5).intersects(DimRange(5, 10))

    def test_strided_disjoint_even_odd(self):
        """Fig 6.3c: sh[0:4:2] and sh[1:4:2] are exactly disjoint."""
        assert not DimRange(0, 4, 2).intersects(DimRange(1, 4, 2))

    def test_strided_intersection_found_by_crt(self):
        a = DimRange(0, 30, 6)  # {0, 6, 12, 18, 24}
        b = DimRange(3, 30, 9)  # {3, 12, 21}
        assert a.intersects(b)  # common: 12

    def test_strided_no_solution(self):
        a = DimRange(0, 30, 6)  # ≡ 0 (mod 6)
        b = DimRange(1, 30, 6)  # ≡ 1 (mod 6)
        assert not a.intersects(b)

    def test_window_excludes_congruent_solution(self):
        a = DimRange(0, 10, 4)  # {0, 4, 8}
        b = DimRange(12, 20, 4)  # {12, 16}
        assert not a.intersects(b)  # congruent but out of window

    def test_invalid_ranges(self):
        with pytest.raises(ValueError):
            DimRange(5, 5)
        with pytest.raises(ValueError):
            DimRange(0, 5, 0)


class TestRegion:
    def test_fluent_construction(self):
        r = Region("sh")[1:3][2:4]
        assert r.describe() == "sh[1:3][2:4]"

    def test_field_selector(self):
        """The sh[1:2][2:3].c[2] example of §6.3."""
        r = Region("sh")[1:3][2:4].field("c")[2]
        assert r.describe() == "sh[1:3][2:4].c[2]"

    def test_step_in_describe(self):
        r = Region("sh")[0:4:2]
        assert r.describe() == "sh[0:4:2]"

    def test_different_vars_never_overlap(self):
        assert not Region("a")[0:10].overlaps(Region("b")[0:10])

    def test_overlap_requires_all_dims(self):
        a = Region("sh")[0:5][0:5]
        b = Region("sh")[0:5][5:10]
        assert not a.overlaps(b)
        c = Region("sh")[2:7][2:7]
        assert a.overlaps(c)

    def test_prefix_covers_subtree(self):
        """sh[1] overlaps sh[1].c[2] — the shorter chain is the whole row."""
        whole = Region("sh")[1]
        field = Region("sh")[1].field("c")[2]
        assert whole.overlaps(field)
        assert field.overlaps(whole)

    def test_different_fields_disjoint(self):
        a = Region("sh")[1].field("c")
        b = Region("sh")[1].field("i")
        assert not a.overlaps(b)

    def test_whole_array_overlaps_any_element(self):
        whole = Region("sh")
        elem = Region("sh")[3][4]
        assert whole.overlaps(elem)

    def test_bad_index_type(self):
        with pytest.raises(TypeError):
            Region("sh")["oops"]
        with pytest.raises(ValueError):
            Region("sh")[1:]


class TestConflicts:
    def test_ro_ro_never_conflicts(self):
        """Multiple-read: overlapping ro binds coexist (§6.2.2)."""
        a = Region("sh")[0:10]
        assert not regions_conflict(a, AccessType.RO, a, AccessType.RO)

    def test_rw_anything_conflicts_on_overlap(self):
        a = Region("sh")[0:10]
        b = Region("sh")[5:15]
        assert regions_conflict(a, AccessType.RW, b, AccessType.RO)
        assert regions_conflict(a, AccessType.RO, b, AccessType.RW)
        assert regions_conflict(a, AccessType.RW, b, AccessType.RW)

    def test_disjoint_rw_no_conflict(self):
        a = Region("sh")[0:5]
        b = Region("sh")[5:10]
        assert not regions_conflict(a, AccessType.RW, b, AccessType.RW)

    def test_ex_never_conflicts_with_data(self):
        a = Region("sh")[0:10]
        assert not regions_conflict(a, AccessType.EX, a, AccessType.RW)

    def test_fig_6_2_scenario(self):
        """Fig 6.2: A (rw) and B (rw) conflict; B and C (ro vs ro) don't."""
        A = Region("m")[0:4][0:4]
        B = Region("m")[2:6][2:6]
        C = Region("m")[4:8][4:8]
        assert regions_conflict(A, AccessType.RW, B, AccessType.RW)
        assert not regions_conflict(B, AccessType.RO, C, AccessType.RO)

"""Tests for trace record/replay."""

import pytest

from repro.sim.trace import Trace, TraceHeader
from repro.sim.workload import AccessEvent, UniformWorkload


def make_trace(cycles=50, seed=0):
    w = UniformWorkload(4, 8, 0.3, seed=seed)
    return Trace.record(w, cycles, description="test")


class TestRoundTrip:
    def test_record_matches_workload(self):
        w = UniformWorkload(4, 8, 0.3, seed=1)
        t = Trace.record(w, 40)
        again = UniformWorkload(4, 8, 0.3, seed=1).generate(40)
        assert t.events == again

    def test_dumps_loads_roundtrip(self):
        t = make_trace()
        t2 = Trace.loads(t.dumps())
        assert t2.header == t.header
        assert t2.events == t.events

    def test_save_load_file(self, tmp_path):
        t = make_trace()
        path = tmp_path / "trace.jsonl"
        t.save(path)
        t2 = Trace.load(path)
        assert t2.events == t.events

    def test_per_cycle_batches(self):
        t = make_trace(cycles=20)
        batches = list(t.per_cycle())
        assert len(batches) == 20
        assert sum(len(b) for b in batches) == len(t)
        for cycle, batch in enumerate(batches):
            assert all(ev.cycle == cycle for ev in batch)


class TestValidation:
    def test_out_of_range_proc_rejected(self):
        header = TraceHeader(n_procs=2, n_modules=4, cycles=10)
        with pytest.raises(ValueError):
            Trace(header, [AccessEvent(0, 5, 0, 0)])

    def test_unordered_events_rejected(self):
        header = TraceHeader(n_procs=4, n_modules=4, cycles=10)
        events = [AccessEvent(5, 0, 0, 0), AccessEvent(2, 1, 0, 0)]
        with pytest.raises(ValueError):
            Trace(header, events)

    def test_event_beyond_cycles_rejected(self):
        header = TraceHeader(n_procs=4, n_modules=4, cycles=10)
        with pytest.raises(ValueError):
            Trace(header, [AccessEvent(10, 0, 0, 0)])

    def test_empty_text_rejected(self):
        with pytest.raises(ValueError):
            Trace.loads("")

    def test_version_checked(self):
        t = make_trace()
        text = t.dumps().replace('"version": 1', '"version": 99')
        with pytest.raises(ValueError):
            Trace.loads(text)

    def test_unknown_header_key_named_in_error(self):
        # Regression: TraceHeader(**raw) used to raise an opaque TypeError.
        t = make_trace()
        text = t.dumps().replace('"version": 1', '"version": 1, "bogus": 7')
        with pytest.raises(ValueError, match="unknown trace header key.*bogus"):
            Trace.loads(text)

    def test_missing_header_key_named_in_error(self):
        t = make_trace()
        text = t.dumps().replace('"n_procs": 4, ', "")
        with pytest.raises(ValueError, match="missing trace header key.*n_procs"):
            Trace.loads(text)

    def test_non_object_header_rejected(self):
        with pytest.raises(ValueError, match="JSON object"):
            Trace.loads("[1, 2, 3]\n")

    def test_roundtrip_header_equality_after_validation(self):
        # dumps -> loads must be the identity on both header and events.
        t = make_trace(cycles=30, seed=7)
        t2 = Trace.loads(t.dumps())
        assert t2.header == t.header
        assert t2.events == t.events
        assert Trace.loads(t2.dumps()).dumps() == t.dumps()


class TestReplayFairness:
    def test_identical_trace_drives_two_simulators(self):
        """The point of traces: two architectures see the same accesses."""
        t = make_trace(cycles=100, seed=3)
        seen_a = [(ev.proc, ev.module) for ev in t]
        t2 = Trace.loads(t.dumps())
        seen_b = [(ev.proc, ev.module) for ev in t2]
        assert seen_a == seen_b

"""Tests for the distributed-memory binding implementation (§6.5.2)."""

import pytest

from repro.binding.distributed import (
    DistributedBindingRuntime,
    RemoteBind,
    RemoteUnbind,
)
from repro.binding.region import AccessType, Region
from repro.sim.procs import Delay


def make(n_nodes=4, hop=4):
    # Deterministic homes: variable name's last char as node index.
    return DistributedBindingRuntime(
        n_nodes, hop_latency=hop, home_of=lambda var: int(var[-1]) % n_nodes
    )


class TestRemoteBinding:
    def test_bind_pays_round_trip(self):
        rt = make(hop=5)
        log = []

        def client():
            d = yield RemoteBind(Region("x0")[0:4], AccessType.RW)
            log.append(rt.sched.cycle)
            yield RemoteUnbind(d)

        rt.spawn(client())
        rt.run()
        assert log[0] >= 2 * 5  # request + grant reply

    def test_conflicting_remote_binds_serialize(self):
        rt = make()
        order = []

        def client(name, delay):
            def gen():
                yield Delay(delay)
                d = yield RemoteBind(Region("x0")[0:4], AccessType.RW)
                order.append((name, "bind", rt.sched.cycle))
                yield Delay(3)
                yield RemoteUnbind(d)
                order.append((name, "unbind", rt.sched.cycle))

            return gen()

        rt.spawn(client("a", 0))
        rt.spawn(client("b", 1))
        rt.run()
        ev = {(n, e): c for n, e, c in order}
        assert ev[("b", "bind")] > ev[("a", "unbind")]

    def test_ro_binds_coexist(self):
        rt = make()
        binds = []

        def reader(delay):
            def gen():
                yield Delay(delay)
                d = yield RemoteBind(Region("x0")[0:4], AccessType.RO)
                binds.append(rt.sched.cycle)
                yield Delay(5)
                yield RemoteUnbind(d)

            return gen()

        rt.spawn(reader(0))
        rt.spawn(reader(0))
        rt.run()
        assert abs(binds[0] - binds[1]) <= 1

    def test_variables_on_different_servers_independent(self):
        rt = make()
        binds = []

        def client(var):
            def gen():
                d = yield RemoteBind(Region(var)[0:4], AccessType.RW)
                binds.append((var, rt.sched.cycle))
                yield Delay(5)
                yield RemoteUnbind(d)

            return gen()

        rt.spawn(client("x0"))
        rt.spawn(client("x1"))
        rt.run()
        cycles = [c for _v, c in binds]
        assert abs(cycles[0] - cycles[1]) <= 1

    def test_nonblocking_denial(self):
        rt = make()
        results = []

        def holder():
            d = yield RemoteBind(Region("x0")[0:4], AccessType.RW)
            yield Delay(10)
            yield RemoteUnbind(d)

        def prober():
            yield Delay(9)  # after the holder's grant arrived
            got = yield RemoteBind(
                Region("x0")[0:4], AccessType.RW, blocking=False
            )
            results.append(got)

        rt.spawn(holder())
        rt.spawn(prober())
        rt.run()
        assert results == [None]
        assert rt.traffic.denials == 1


class TestTrafficAccounting:
    def test_rw_bind_ships_data_both_ways(self):
        """§6.5.2: grant carries the region out; rw unbind ships it back."""
        rt = make()

        def client():
            d = yield RemoteBind(Region("x0")[0:8], AccessType.RW)
            yield RemoteUnbind(d)

        rt.spawn(client())
        rt.run()
        assert rt.traffic.data_messages == 2
        assert rt.traffic.words_shipped == 16  # 8 out + 8 back

    def test_ro_bind_ships_data_one_way(self):
        rt = make()

        def client():
            d = yield RemoteBind(Region("x0")[0:8], AccessType.RO)
            yield RemoteUnbind(d)

        rt.spawn(client())
        rt.run()
        assert rt.traffic.data_messages == 1
        assert rt.traffic.words_shipped == 8

    def test_message_totals(self):
        rt = make()

        def client():
            d = yield RemoteBind(Region("x0")[0:4], AccessType.RW)
            yield RemoteUnbind(d)

        rt.spawn(client())
        rt.run()
        # 1 bind request + 1 grant + 1 unbind message (+2 data messages).
        assert rt.traffic.requests == 2
        assert rt.traffic.grants == 1

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            DistributedBindingRuntime(0)
        with pytest.raises(ValueError):
            DistributedBindingRuntime(4, hop_latency=0)


class TestDataConsistency:
    """§6.5.2: 'data consistency is maintained by the resource binding
    paradigm through message-passing' — with release-consistency movement:
    writes ship home at unbind, reads ship out at bind."""

    def test_write_visible_after_unbind(self):
        rt = make()
        seen = []

        def writer():
            d = yield RemoteBind(Region("x0")[0:4], AccessType.RW)
            d.write(2, 99)
            yield RemoteUnbind(d)

        def reader():
            yield Delay(30)  # after the writer's unbind
            d = yield RemoteBind(Region("x0")[0:4], AccessType.RO)
            seen.append(d.read(2))
            yield RemoteUnbind(d)

        rt.spawn(writer())
        rt.spawn(reader())
        rt.run()
        assert seen == [99]
        assert rt.peek("x0", 2) == 99

    def test_serialized_rw_binders_see_each_others_writes(self):
        rt = make()
        history = []

        def incrementer(tag):
            def gen():
                d = yield RemoteBind(Region("x0")[0:1], AccessType.RW)
                v = d.read(0)
                d.write(0, v + 1)
                history.append((tag, v))
                yield RemoteUnbind(d)

            return gen()

        for t in range(3):
            rt.spawn(incrementer(t))
        rt.run()
        assert rt.peek("x0", 0) == 3
        assert sorted(v for _t, v in history) == [0, 1, 2]

    def test_ro_bind_cannot_write(self):
        rt = make()
        errors = []

        def reader():
            d = yield RemoteBind(Region("x0")[0:4], AccessType.RO)
            try:
                d.write(0, 1)
            except PermissionError:
                errors.append("blocked")
            yield RemoteUnbind(d)

        rt.spawn(reader())
        rt.run()
        assert errors == ["blocked"]
        assert rt.peek("x0", 0) == 0

    def test_out_of_region_access_rejected(self):
        rt = make()
        errors = []

        def client():
            d = yield RemoteBind(Region("x0")[0:4], AccessType.RW)
            try:
                d.read(9)
            except KeyError:
                errors.append("read")
            try:
                d.write(9, 1)
            except KeyError:
                errors.append("write")
            yield RemoteUnbind(d)

        rt.spawn(client())
        rt.run()
        assert errors == ["read", "write"]

    def test_writes_invisible_until_release(self):
        """A concurrent ro binder of a *different* element sees the old
        value until the writer's unbind ships the region home."""
        rt = make()
        seen = []

        def writer():
            d = yield RemoteBind(Region("x0")[0:2], AccessType.RW)
            d.write(0, 42)
            yield Delay(20)  # hold the bind: the write is still local
            yield RemoteUnbind(d)

        def early_peek():
            yield Delay(15)  # while the writer still holds its bind
            seen.append(("early", rt.peek("x0", 0)))

        def late_peek():
            yield Delay(60)
            seen.append(("late", rt.peek("x0", 0)))

        rt.spawn(writer())
        rt.spawn(early_peek())
        rt.spawn(late_peek())
        rt.run()
        assert ("early", 0) in seen  # not yet released
        assert ("late", 42) in seen  # released at unbind

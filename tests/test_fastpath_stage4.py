"""Stage-4 stacked engine: lockstep cross-run execution (invariant 11).

Proof obligations, mirroring the ISSUE acceptance list:

* **differential sweep** — :func:`repro.fastpath.stack.run_specs_stacked`
  is bit-identical to per-spec serial :func:`repro.obs.bench.run_spec`
  across shapes (4, 1)…(128, 32), every engine pin, and duplicate specs
  (which get their own lanes);
* **raw lockstep identity** — :func:`repro.fastpath.stack.run_stack` on
  mixed workloads (full-load reads, partial load, private writes, mixed
  budgets) leaves every module in exactly the state a serial
  ``mem.run(slots)`` produces: same banks, same completion log, same
  slot;
* **hazard ejection mid-stack** — a lane that picks up a same-offset
  write interleave (or carries an observer from the start) is ejected
  onto its own ``run_batch`` — counted as ``stack.fallbacks`` — while
  its stack-mates stay vectorized, and the ejected lane remains
  bit-identical to its serial run;
* **metrics-snapshot identity** — observed lanes see the identical
  event stream stacked or serial;
* **sweep integration** — ``sweep(..., stack=True)`` groups stackable
  specs by shape, produces the identical document (serial or pooled),
  and records the stacking plan under ``timing.stack``.
"""

from __future__ import annotations

import json

import pytest

from repro.core.block import Block
from repro.core.cfm import AccessKind, CFMemory
from repro.core.config import CFMConfig
from repro.fastpath.engine import ENGINE_STACKED, ENGINES, engine_available
from repro.obs.hotpath import HotpathProfiler
from repro.obs.metrics import MetricsRegistry

np = pytest.importorskip("numpy")

from repro.fastpath.stack import (  # noqa: E402 - needs numpy
    run_stack,
    run_specs_stacked,
    stack_shape,
    stackable_spec,
)


def _normalized(doc):
    return json.loads(json.dumps(doc, sort_keys=True))


def _fingerprint(mem: CFMemory, log):
    return (
        mem.slot,
        [sorted(bank.items()) for bank in mem.banks],
        [(a.proc, a.words_done) for a in mem.active],
        len(mem.completed),
        list(log),
    )


# --------------------------------------------------------------------------
# Workload builders: each returns a primed module + its completion log.
# Deterministic, so a fresh serial twin sees the identical issue stream.


def _reads(cfg: CFMConfig, stride: int = 1):
    """Full-load streaming reads; ``stride > 1`` leaves procs idle."""
    mem = CFMemory(cfg)
    log = []

    def reissue(acc):
        log.append((acc.proc, acc.complete_slot, mem.slot, acc.first_bank))
        mem.issue(acc.proc, AccessKind.READ, offset=acc.proc % 4,
                  on_finish=reissue)

    for p in range(0, cfg.n_procs, stride):
        mem.issue(p, AccessKind.READ, offset=p % 4, on_finish=reissue)
    return mem, log


def _private_writes(cfg: CFMConfig):
    """Every 2nd reissue of a proc writes a processor-private offset —
    hazard-free, exercising the stacked write path + memo invalidation."""
    mem = CFMemory(cfg)
    log = []
    counts = [0] * cfg.n_procs

    def reissue(acc):
        log.append((acc.proc, acc.complete_slot, mem.slot))
        p = acc.proc
        counts[p] += 1
        if counts[p] % 2 == 0:
            data = Block.of_values([counts[p] * 100 + p] * mem.n_banks)
            mem.issue(p, AccessKind.WRITE, offset=p, data=data,
                      version=f"P{p}.{counts[p]}", on_finish=reissue)
        else:
            mem.issue(p, AccessKind.READ, offset=p, on_finish=reissue)

    for p in range(cfg.n_procs):
        mem.issue(p, AccessKind.READ, offset=p, on_finish=reissue)
    return mem, log


def _conflicting_writes(cfg: CFMConfig):
    """Procs 0 and 1 periodically write the SAME offset: under full load
    both writes go in flight together, the write-interleave hazard breaks
    the static proof, and the lane must eject mid-stack."""
    mem = CFMemory(cfg)
    log = []
    counts = [0] * cfg.n_procs

    def reissue(acc):
        log.append((acc.proc, acc.complete_slot, mem.slot))
        p = acc.proc
        counts[p] += 1
        if p < 2 and counts[p] % 3 == 0:
            data = Block.of_values([counts[p] * 10 + p] * mem.n_banks)
            mem.issue(p, AccessKind.WRITE, offset=0, data=data,
                      version=f"W{p}.{counts[p]}", on_finish=reissue)
        else:
            mem.issue(p, AccessKind.READ, offset=p, on_finish=reissue)

    for p in range(cfg.n_procs):
        mem.issue(p, AccessKind.READ, offset=p, on_finish=reissue)
    return mem, log


WORKLOADS = [_reads, lambda cfg: _reads(cfg, stride=2), _private_writes,
             _conflicting_writes]


# --------------------------------------------------------------------------
# Raw lockstep identity


@pytest.mark.parametrize("n_procs,bank_cycle", [(4, 1), (8, 2), (16, 4)])
def test_run_stack_mixed_workloads_match_serial(n_procs, bank_cycle):
    cfg = CFMConfig(n_procs=n_procs, bank_cycle=bank_cycle)
    slots = 6 * cfg.n_banks
    stacked = [build(cfg) for build in WORKLOADS]
    run_stack([mem for mem, _ in stacked], slots)
    for build, (mem, log) in zip(WORKLOADS, stacked):
        serial_mem, serial_log = build(cfg)
        serial_mem.run(slots)
        assert _fingerprint(mem, log) == _fingerprint(serial_mem, serial_log)


def test_run_stack_mixed_budgets_match_serial():
    cfg = CFMConfig(n_procs=8, bank_cycle=2)
    budgets = [2 * cfg.n_banks, 5 * cfg.n_banks, 0, 3 * cfg.n_banks + 7]
    stacked = [_reads(cfg) for _ in budgets]
    run_stack([mem for mem, _ in stacked], budgets)
    for budget, (mem, log) in zip(budgets, stacked):
        serial_mem, serial_log = _reads(cfg)
        serial_mem.run(budget)
        assert _fingerprint(mem, log) == _fingerprint(serial_mem, serial_log)


def test_run_stack_validates_shapes_and_budgets():
    a = CFMemory(CFMConfig(n_procs=4, bank_cycle=1))
    b = CFMemory(CFMConfig(n_procs=8, bank_cycle=2))
    with pytest.raises(ValueError, match="shape"):
        run_stack([a, b], 10)
    with pytest.raises(ValueError, match="slot budgets"):
        run_stack([a], [10, 20])
    with pytest.raises(ValueError, match=">= 0"):
        run_stack([a], [-1])
    run_stack([], 10)  # empty stack is a no-op


# --------------------------------------------------------------------------
# Hazard ejection mid-stack


def test_hazard_lane_ejects_while_stackmates_stay_vectorized():
    cfg = CFMConfig(n_procs=8, bank_cycle=2)
    slots = 8 * cfg.n_banks
    clean_mem, clean_log = _reads(cfg)
    hazard_mem, hazard_log = _conflicting_writes(cfg)
    clean_hp, hazard_hp = HotpathProfiler(), HotpathProfiler()
    clean_mem.hotpath = clean_hp
    hazard_mem.hotpath = hazard_hp
    run_stack([clean_mem, hazard_mem], slots)

    clean_events = clean_hp.snapshot()["cfm"]
    hazard_events = hazard_hp.snapshot()["cfm"]
    # The clean lane never fell out of lockstep...
    assert "stack.fallbacks" not in clean_events
    assert clean_events["stack.batched_slots"] == slots
    # ...the hazard lane was ejected exactly once, ran some rounds stacked
    # first, and finished its window on its own batch/tick path.
    assert hazard_events["stack.fallbacks"] == 1
    assert 0 < hazard_events.get("stack.batched_slots", 0) < slots
    slot_sum = sum(n for name, n in hazard_events.items()
                   if name not in ("stack.fallbacks", "vector.fallbacks"))
    assert slot_sum == slots
    # Occupancy pools stacked slots with the other batch counters.
    assert clean_hp.occupancy()["cfm"]["batched_frac"] == 1.0
    assert clean_hp.occupancy()["cfm"]["batched"] == slots

    # Both lanes remain bit-identical to their serial runs.
    for build, mem, log in [(_reads, clean_mem, clean_log),
                            (_conflicting_writes, hazard_mem, hazard_log)]:
        serial_mem, serial_log = build(cfg)
        serial_mem.run(slots)
        assert _fingerprint(mem, log) == _fingerprint(serial_mem, serial_log)


def test_observed_lane_ejects_with_identical_metrics_snapshot():
    """An observer (metrics registry) voids the static proof before the
    first round: the lane ejects immediately and its registry sees the
    identical event stream a serial run feeds it."""
    cfg = CFMConfig(n_procs=4, bank_cycle=1)
    slots = 40

    def observed():
        reg = MetricsRegistry()
        mem = CFMemory(cfg, metrics=reg)
        done = []
        for p in range(cfg.n_procs):
            mem.issue(p, AccessKind.READ, offset=p % 3,
                      on_finish=lambda a: done.append((a.proc,
                                                      a.complete_slot)))
        return mem, done, reg

    hp = HotpathProfiler()
    obs_mem, obs_done, obs_reg = observed()
    obs_mem.hotpath = hp
    clean_mem, clean_log = _reads(cfg)
    run_stack([obs_mem, clean_mem], slots)
    assert hp.snapshot()["cfm"]["stack.fallbacks"] == 1

    serial_mem, serial_done, serial_reg = observed()
    serial_mem.run(slots)
    assert obs_done == serial_done
    assert obs_mem.slot == serial_mem.slot == slots
    assert obs_reg.snapshot() == serial_reg.snapshot()
    assert obs_reg.snapshot()  # the registry really was fed


# --------------------------------------------------------------------------
# Spec-level differential sweep (invariant 11)

SHAPES = [(4, 1), (8, 2), (16, 4), (32, 8), (64, 16), (128, 32)]


def _spec(n_procs, bank_cycle, cycles, engine):
    return {"system": "cfm",
            "params": {"n_procs": n_procs, "bank_cycle": bank_cycle,
                       "cycles": cycles, "engine": engine}}


@pytest.mark.parametrize("n_procs,bank_cycle", SHAPES)
def test_run_specs_stacked_matches_run_spec(n_procs, bank_cycle):
    from repro.obs.bench import run_spec

    n_banks = n_procs * bank_cycle
    # Reference/batch pins ride only the small shapes (they are the slow
    # serial oracles); the numpy engines sweep everything.
    engines = [e for e in ENGINES
               if n_banks <= 64 or e in ("vectorized", "stacked")]
    specs = [_spec(n_procs, bank_cycle, n_banks * (i + 2), engine)
             for i, engine in enumerate(engines)]
    specs.append(_normalized(specs[-1]))  # duplicate spec: its own lane
    serial = [run_spec(_normalized(s)) for s in specs]
    stacked = run_specs_stacked([_normalized(s) for s in specs])
    assert _normalized(stacked) == _normalized(serial)
    # Each report still names ITS spec's engine pin, and the duplicate's
    # report is identical to its twin's.
    assert [r["params"]["engine"] for r in stacked] == engines + [engines[-1]]
    assert _normalized(stacked[-1]) == _normalized(stacked[-2])


def test_run_specs_stacked_validation():
    assert run_specs_stacked([]) == []
    with pytest.raises(ValueError, match="not stackable"):
        run_specs_stacked([{"system": "cfm",
                            "params": {"n_procs": 4, "cycles": 10}}])
    with pytest.raises(ValueError, match="shape"):
        run_specs_stacked([_spec(4, 1, 20, "stacked"),
                           _spec(8, 2, 20, "stacked")])


def test_stackable_spec_predicate():
    good = _spec(4, 1, 100, "stacked")
    assert stackable_spec(good)
    assert stack_shape(good) == (4, 1)
    assert stack_shape(_spec(8, 4, 100, "vectorized")) == (32, 4)
    # Any engine pin qualifies (results are engine-invariant) ...
    assert all(stackable_spec(_spec(4, 1, 100, e)) for e in ENGINES)
    # ... but the engineless observed path, faults, probes, other
    # systems, and malformed params never do.
    assert not stackable_spec({"system": "cfm",
                               "params": {"n_procs": 4, "cycles": 100}})
    assert not stackable_spec(dict(good, inject={"events": []}))
    assert not stackable_spec(dict(good, system="cache"))
    bad_probe = _normalized(good)
    bad_probe["params"]["probe"] = "record"
    assert not stackable_spec(bad_probe)
    for params in ({"n_procs": 0, "cycles": 10, "engine": "stacked"},
                   {"n_procs": 4, "cycles": -1, "engine": "stacked"},
                   {"n_procs": 4, "cycles": 10, "engine": "turbo"},
                   {"n_procs": "x", "cycles": 10, "engine": "stacked"}):
        assert not stackable_spec({"system": "cfm", "params": params})


def test_width_one_stack_is_the_run_engine_stacked_path():
    assert engine_available(ENGINE_STACKED, "cfm")
    serial_mem, serial_log = _reads(CFMConfig(n_procs=8, bank_cycle=2))
    serial_mem.run(160)
    mem, log = _reads(CFMConfig(n_procs=8, bank_cycle=2))
    mem.run_engine(160, engine=ENGINE_STACKED)
    assert _fingerprint(mem, log) == _fingerprint(serial_mem, serial_log)


# --------------------------------------------------------------------------
# Sweep integration (satellite: shape-grouped stacking in the harness)


class TestStackedSweep:
    SPECS = [
        _spec(8, 2, 200, "stacked"),
        {"system": "interleaved",
         "params": {"n_procs": 8, "n_modules": 8, "rate": 0.04, "beta": 17,
                    "cycles": 500, "seed": 7}},
        _spec(8, 2, 300, "vectorized"),   # same shape, different pin
        _spec(4, 1, 150, "stacked"),      # second shape group
        {"system": "cfm",                 # engineless: observed, unstackable
         "params": {"n_procs": 8, "bank_cycle": 2, "cycles": 200}},
        _spec(8, 2, 200, "stacked"),      # duplicate of SPECS[0]
    ]

    def test_stacked_sweep_identical_serial_and_pooled(self):
        from repro.fastpath.parallel import sweep

        plain = sweep(_normalized(self.SPECS), jobs=1, name="t")
        stacked = sweep(_normalized(self.SPECS), jobs=1, name="t", stack=True)
        pooled = sweep(_normalized(self.SPECS), jobs=2, name="t", stack=True)
        for doc in (plain, stacked, pooled):
            doc.pop("timing")
        assert stacked == plain
        assert pooled == plain

    def test_timing_records_the_stack_plan(self):
        from repro.fastpath.parallel import sweep

        doc = sweep(_normalized(self.SPECS), jobs=1, name="t", timing=True,
                    stack=True)
        # One multi-lane unit — the (16, 2) group: specs 0, 2, and 5.
        # The (4, 1) group is width-1 and is demoted to a singleton.
        assert doc["timing"]["stack"] == {"units": 1, "stacked_runs": 3}
        assert len(doc["timing"]["runs"]) == len(self.SPECS)

    def test_unstacked_sweep_has_no_stack_section(self):
        from repro.fastpath.parallel import sweep

        doc = sweep(_normalized(self.SPECS[:1]), jobs=1, name="t",
                    timing=True)
        assert "stack" not in doc["timing"]

"""The fault-injection & recovery layer (``repro.faults``).

Two invariants make the layer safe to ship, and both are pinned here:

* **zero-fault bit-identity** — attaching a zero :class:`FaultPlan`
  changes nothing, on both the reference and fastpath engines, at every
  layer (:func:`repro.faults.chaos.differential_zero_fault`);
* **complete-or-typed-error** — every seeded-fault run either completes
  or raises a :class:`FaultError` subclass / :class:`SimulationTimeout`;
  never a hang, never silent corruption.  A hypothesis sweep drives this
  over arbitrary seeds.

Plus the recovery mechanics one by one: bounded retry under stuck banks,
typed exhaustion, slow-bank completion delays, graceful degradation onto
the ``b-1`` AT schedule (and its ``c = 1`` impossibility), lost/delayed
completions at the cache layer, and network drop windows.
"""

import pytest

from repro.cache.protocol import CacheSystem
from repro.core.block import Block
from repro.core.cfm import AccessKind, CFMemory
from repro.core.config import CFMConfig
from repro.faults import (
    DegradedModeError,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    NetworkFaultError,
    RecoveringOp,
    RetryExhaustedError,
    RetryPolicy,
    assert_degraded_conflict_free,
    degraded_slot_bank_table,
    run_with_recovery,
    shadow_bank_for,
)
from repro.faults.chaos import (
    chaos_cache,
    chaos_cfm,
    chaos_hierarchy,
    chaos_network,
    chaos_sweep,
    differential_zero_fault,
)
from repro.obs.hotpath import HotpathProfiler
from repro.obs.metrics import MetricsRegistry
from repro.sim.engine import SimulationTimeout
from repro.tracking.atomic import CFMDriver

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402


# --------------------------------------------------------------------------
# Plans and the injector


def test_zero_plan_is_inactive():
    inj = FaultInjector(FaultPlan.zero())
    assert FaultPlan.zero().is_zero
    assert not inj.active
    assert inj.snapshot() == {}


def test_plan_generation_is_deterministic():
    a = FaultPlan.generate(42, n_banks=8, n_procs=4)
    b = FaultPlan.generate(42, n_banks=8, n_procs=4)
    assert a == b
    assert not a.is_zero
    c = FaultPlan.generate(43, n_banks=8, n_procs=4)
    assert a != c  # different seed, different schedule


def test_event_windows_and_permanence():
    ev = FaultEvent(kind="bank_stuck", start=10, duration=3, target=1)
    assert not ev.active(9)
    assert ev.active(10) and ev.active(12)
    assert not ev.active(13)
    dead = FaultEvent(kind="bank_dead", start=10, duration=1, target=1)
    assert dead.active(10_000)  # permanent
    with pytest.raises(ValueError):
        FaultEvent(kind="gremlins", start=0, duration=1)
    with pytest.raises(ValueError):
        FaultEvent(kind="bank_stuck", start=0, duration=0)


def test_injector_mirrors_counters_into_metrics_and_hotpath():
    metrics = MetricsRegistry()
    hp = HotpathProfiler()
    plan = FaultPlan.of([FaultEvent(kind="bank_stuck", start=0, duration=4)])
    inj = FaultInjector(plan, metrics=metrics, hotpath=hp)
    token = hp.claim("cache")  # a foreign claim must NOT drop fault tallies
    inj.count("bank.stuck_abort", 2)
    hp.release(token)
    assert inj.snapshot() == {"bank.stuck_abort": 2}
    assert metrics.counter("faults").get("bank.stuck_abort") == 2
    assert hp.get("faults", "bank.stuck_abort") == 2


# --------------------------------------------------------------------------
# Zero-fault bit-identity (the differential harness)


def test_zero_fault_runs_are_bit_identical_at_every_layer():
    assert differential_zero_fault(seed=0) == {
        "cfm": True,
        "cache": True,
        "hierarchy": True,
    }


# --------------------------------------------------------------------------
# Degraded b-1 AT schedules


@pytest.mark.parametrize("n_banks,bank_cycle", [(8, 2), (16, 4), (32, 8)])
def test_degraded_table_is_conflict_free(n_banks, bank_cycle):
    for dead in (0, n_banks // 2, n_banks - 1):
        assert_degraded_conflict_free(n_banks, bank_cycle, dead)
        table = degraded_slot_bank_table(n_banks, bank_cycle, dead)
        assert len(table) == n_banks - 1  # period shrinks to b-1
        for row in table:
            assert dead not in row  # the dead bank is never scheduled
            assert len(set(row)) == len(row)  # per-slot injectivity


def test_degraded_table_impossible_for_c1():
    # c = 1 means n = b processors: b-1 surviving banks cannot host an
    # injective per-slot assignment, so degradation must refuse, typed.
    with pytest.raises(DegradedModeError):
        degraded_slot_bank_table(4, 1, dead_bank=2)


def test_degraded_memory_preserves_data_integrity():
    mem = CFMemory(CFMConfig(n_procs=4, bank_cycle=2))  # b=8, n=4
    d = CFMDriver(mem)
    b = mem.n_banks
    before = [RecoveringOp(d, p, p, AccessKind.WRITE,
                           values=[100 + p * 10 + k for k in range(b)],
                           version=f"pre{p}").start()
              for p in range(4)]
    d.run_until(lambda: all(op.done for op in before))

    dead = 3
    mem.degrade_bank(dead)
    assert mem.degraded
    assert shadow_bank_for(b, dead) == (dead + 1) % b

    # Pre-degradation data survives (the dead bank's words are served by
    # the shadow bank on its pass), and new traffic lands correctly.
    after_w = [RecoveringOp(d, p, 4 + p, AccessKind.WRITE,
                            values=[200 + p * 10 + k for k in range(b)],
                            version=f"post{p}").start()
               for p in range(4)]
    d.run_until(lambda: all(op.done for op in after_w))
    reads = [RecoveringOp(d, p, p, AccessKind.READ).start() for p in range(4)]
    d.run_until(lambda: all(op.done for op in reads))
    reads2 = [RecoveringOp(d, p, 4 + p, AccessKind.READ).start()
              for p in range(4)]
    d.run_until(lambda: all(op.done for op in reads2))
    for p in range(4):
        assert reads[p].result.values == [100 + p * 10 + k for k in range(b)]
        assert reads2[p].result.values == [200 + p * 10 + k for k in range(b)]
        assert mem.peek_block(p).values == reads[p].result.values


def test_degrade_refuses_twice_and_c1():
    mem = CFMemory(CFMConfig(n_procs=4, bank_cycle=2))
    mem.degrade_bank(1)
    with pytest.raises(DegradedModeError):
        mem.degrade_bank(2)  # second death: not modelled, typed refusal
    c1 = CFMemory(CFMConfig(n_procs=4, bank_cycle=1))
    with pytest.raises(DegradedModeError):
        c1.degrade_bank(0)


# --------------------------------------------------------------------------
# Recovery: bounded retry, exhaustion, slow banks


def _stuck_setup(duration, *, policy=None):
    mem = CFMemory(CFMConfig(n_procs=4, bank_cycle=1))
    plan = FaultPlan.of(
        [FaultEvent(kind="bank_stuck", start=0, duration=duration, target=0)]
    )
    inj = FaultInjector(plan)
    mem.faults = inj
    d = CFMDriver(mem)
    op = RecoveringOp(d, 0, 0, AccessKind.WRITE,
                      values=list(range(mem.n_banks)), version="w",
                      policy=policy)
    return mem, inj, d, op


def test_stuck_bank_recovers_within_budget():
    # Every block access visits every bank, so a stuck bank 0 aborts all
    # traffic until the window closes; linear backoff outlives the window.
    mem, inj, d, op = _stuck_setup(duration=30)
    run_with_recovery(d, [op])
    assert op.done and op.error is None
    assert op.attempts > 1
    assert inj.snapshot()["bank.stuck_abort"] >= 1
    assert mem.peek_block(0).values == list(range(mem.n_banks))


def test_stuck_bank_exhausts_retry_budget_typed():
    mem, inj, d, op = _stuck_setup(
        duration=100_000, policy=RetryPolicy(max_retries=3, backoff_slots=1)
    )
    with pytest.raises(RetryExhaustedError) as exc:
        run_with_recovery(d, [op])
    assert exc.value.attempts == 4  # initial issue + 3 retries
    assert exc.value.slot >= 0


def test_slow_bank_delays_completion_but_preserves_data():
    def run_one(inj):
        mem = CFMemory(CFMConfig(n_procs=4, bank_cycle=1))
        if inj is not None:
            mem.faults = inj
        done = []
        mem.issue(0, AccessKind.WRITE, 0,
                  data=Block.of_values([7] * mem.n_banks, "slow"),
                  on_finish=done.append)
        while not done:
            mem.tick()
        return mem, done[0]

    plan = FaultPlan.of(
        [FaultEvent(kind="bank_slow", start=0, duration=200, extra=5)]
    )
    inj = FaultInjector(plan)
    mem, acc = run_one(inj)
    baseline, ref = run_one(None)
    # The slow-bank window adds exactly its drain penalty to the
    # completion slot; the stored data is untouched.
    assert acc.fault == "bank_slow" and acc.fault_delay == 5
    assert acc.complete_slot == ref.complete_slot + 5
    assert inj.snapshot()["bank.slow_drain"] >= 5
    assert mem.peek_block(0).values == baseline.peek_block(0).values


# --------------------------------------------------------------------------
# Cache layer: delayed and lost completions


def test_delayed_completion_preserves_results():
    plan = FaultPlan.of(
        [FaultEvent(kind="completion_delay", start=0, duration=400,
                    target=1, extra=7)]
    )
    faulty = CacheSystem(4, faults=FaultInjector(plan))
    clean = CacheSystem(4)
    results = {}
    for name, sys_ in (("faulty", faulty), ("clean", clean)):
        ops = []
        # Sequenced rounds: a delayed completion slides the clock but must
        # never change what a later round observes.  (Ops are created
        # lazily — creation is issuance.)
        for make_round in (lambda: [sys_.store(1, 0, {0: 11})],
                           lambda: [sys_.load(1, 0), sys_.load(2, 0)]):
            round_ops = make_round()
            sys_.run_ops(round_ops, max_slots=4_000)
            ops.extend(round_ops)
        results[name] = [
            (op.proc, op.kind.value, op.offset,
             None if op.result is None
             else [w.value for w in op.result.words])
            for op in ops
        ]
    assert results["faulty"] == results["clean"]  # late, never wrong
    assert faulty.faults.snapshot()["completion.delayed"] >= 1
    assert faulty.slot > clean.slot


def test_lost_completion_escalates_to_timeout_forensics():
    plan = FaultPlan.of(
        [FaultEvent(kind="completion_lost", start=0, duration=10_000,
                    target=2)]
    )
    sys_ = CacheSystem(4, faults=FaultInjector(plan))
    wedged = sys_.load(2, 0)
    with pytest.raises(SimulationTimeout) as exc:
        sys_.run_ops([wedged], max_slots=500)
    assert "proc 2" in str(exc.value)  # forensics name the wedged proc
    assert any("proc 2" in s for s in exc.value.stuck)
    assert sys_.faults.snapshot()["completion.lost"] >= 1


# --------------------------------------------------------------------------
# Network and hierarchy windows


def test_network_drop_window_retries_to_completion():
    plan = FaultPlan.of(
        [FaultEvent(kind="link_drop", start=0, duration=12, target=3)]
    )
    out = chaos_network(plan, n_ports=8)
    assert out["outcome"] == "completed"
    assert out["counters"]["net.dropped"] >= 1


def test_network_drop_outliving_budget_is_typed():
    plan = FaultPlan.of(
        [FaultEvent(kind="link_drop", start=0, duration=10_000, target=3)]
    )
    out = chaos_network(plan, n_ports=8, max_slots=64)
    assert out["outcome"] == "NetworkFaultError"
    assert out["typed"]
    with pytest.raises(NetworkFaultError):
        raise NetworkFaultError("x", slot=0)  # the type is importable/raisable


def test_nc_stall_window_completes():
    plan = FaultPlan.of(
        [FaultEvent(kind="nc_stall", start=2, duration=8, target=0)]
    )
    out = chaos_hierarchy(plan)
    assert out["outcome"] == "completed"
    assert out["typed"]


# --------------------------------------------------------------------------
# The chaos sweep: complete-or-typed-error, everywhere


def test_chaos_sweep_quick_is_all_typed():
    runs = chaos_sweep(seed=0, trials=2, quick=True)
    assert {r["layer"] for r in runs} == {"cfm", "cache", "hierarchy",
                                          "network"}
    for r in runs:
        assert r["typed"], f"untyped escape: {r['layer']} {r['outcome']}"
    # The c=1 bank_dead scenario must surface as the typed refusal…
    assert any(r["outcome"] == "DegradedModeError" for r in runs
               if r["layer"] == "cfm" and r["shape"] == [4, 1])
    # …and the c=2 one as an actual degraded completion.
    assert any(r["outcome"] == "completed" and r.get("degraded")
               for r in runs if r["layer"] == "cfm" and r["shape"] == [8, 2])


# --------------------------------------------------------------------------
# Property-based: arbitrary seeds never hang, never escape untyped


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_seeded_cfm_chaos_completes_or_raises_typed(seed):
    plan = FaultPlan.generate(
        seed, n_banks=4, n_procs=4, horizon=128, n_events=3,
        kinds=("bank_stuck", "bank_slow"),
    )
    out = chaos_cfm(plan, n_procs=4, bank_cycle=1, rounds=1,
                    max_slots=4_000)
    assert out["typed"], f"untyped escape: {out['outcome']}: {out['error']}"


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_seeded_cache_chaos_completes_or_raises_typed(seed):
    plan = FaultPlan.generate(
        seed, n_banks=4, n_procs=4, horizon=128, n_events=3,
        kinds=("bank_stuck", "bank_slow", "completion_delay",
               "completion_lost"),
    )
    out = chaos_cache(plan, n_procs=4, rounds=2, max_slots=3_000)
    assert out["typed"], f"untyped escape: {out['outcome']}: {out['error']}"


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_zero_plan_attachment_never_perturbs_cfm(seed):
    # Bit-identity holds for *any* seed on the plan: a zero plan's seed is
    # provenance only.
    mem_a = CFMemory(CFMConfig(n_procs=4, bank_cycle=1))
    mem_b = CFMemory(CFMConfig(n_procs=4, bank_cycle=1))
    mem_b.faults = FaultInjector(FaultPlan.zero(seed=seed))
    for mem in (mem_a, mem_b):
        d = CFMDriver(mem)
        ops = [RecoveringOp(d, p, p % 2, AccessKind.WRITE,
                            values=[p] * mem.n_banks, version="v").start()
               for p in range(4)]
        d.run_until(lambda: all(op.done for op in ops))
    assert mem_a.slot == mem_b.slot
    for off in range(2):
        assert mem_a.peek_block(off).values == mem_b.peek_block(off).values
        assert mem_a.peek_block(off).versions == mem_b.peek_block(off).versions

"""Cross-module integration tests: paper scenarios end to end."""

import pytest

from repro.binding.manager import Bind, BindingRuntime, Unbind
from repro.binding.linda import ANY, In, Out, TupleSpace
from repro.binding.region import AccessType, Region
from repro.binding.semaphores import Lock, SemaphoreRuntime, Unlock
from repro.sim.procs import Delay


class TestDiningPhilosophers:
    """Figs 6.4/6.5: the same problem in Linda and in data binding."""

    N = 5
    MEALS = 3

    def _stick_region(self, i):
        if i < self.N - 1:
            return Region("chopstick")[i : i + 2]
        # The wrap-around philosopher holds sticks {0, N−1} via a stride.
        return Region("chopstick")[0 : self.N : self.N - 1]

    def test_data_binding_no_deadlock_all_eat(self):
        rt = BindingRuntime()
        meals = []

        def philosopher(i):
            def gen():
                for _ in range(self.MEALS):
                    d = yield Bind(self._stick_region(i), AccessType.RW)
                    meals.append(i)
                    yield Delay(2)
                    yield Unbind(d)
                    yield Delay(1)

            return gen()

        for i in range(self.N):
            rt.spawn(philosopher(i), f"phil{i}")
        rt.run()
        assert len(meals) == self.N * self.MEALS
        for i in range(self.N):
            assert meals.count(i) == self.MEALS

    def test_neighbours_never_eat_simultaneously(self):
        rt = BindingRuntime()
        eating = set()
        violations = []

        def philosopher(i):
            left, right = i, (i + 1) % self.N

            def gen():
                for _ in range(self.MEALS):
                    d = yield Bind(self._stick_region(i), AccessType.RW)
                    for other in eating:
                        if other in ((i - 1) % self.N, (i + 1) % self.N):
                            violations.append((i, other))
                    eating.add(i)
                    yield Delay(2)
                    eating.discard(i)
                    yield Unbind(d)
                    yield Delay(1)

            return gen()

        for i in range(self.N):
            rt.spawn(philosopher(i), f"phil{i}")
        rt.run()
        assert violations == []

    def test_linda_version_with_room_ticket(self):
        """Fig 6.4: Linda needs N−1 room tickets to avoid deadlock."""
        ts = TupleSpace()
        meals = []

        def philosopher(i):
            def gen():
                for _ in range(2):
                    yield In(("room ticket",))
                    yield In(("chopstick", i))
                    yield In(("chopstick", (i + 1) % self.N))
                    meals.append(i)
                    yield Out(("chopstick", i))
                    yield Out(("chopstick", (i + 1) % self.N))
                    yield Out(("room ticket",))

            return gen()

        def init():
            for i in range(self.N):
                yield Out(("chopstick", i))
            for _ in range(self.N - 1):
                yield Out(("room ticket",))

        ts.spawn(init())
        for i in range(self.N):
            ts.spawn(philosopher(i))
        ts.run()
        assert len(meals) == self.N * 2

    def test_binding_needs_fewer_ops_than_linda(self):
        """Fig 6.5's point: one bind replaces three in's (+ room ticket)."""
        # Binding: 2 ops per meal (bind + unbind).
        # Linda: 6 ops per meal (3 in + 3 out) plus ticket management.
        binding_ops_per_meal = 2
        linda_ops_per_meal = 6
        assert binding_ops_per_meal < linda_ops_per_meal


class TestOverlappedRegions:
    """Figs 6.6/6.7: binding preserves parallelism where one coarse
    semaphore serializes everything."""

    def _run_binding(self, regions):
        rt = BindingRuntime()
        spans = []

        def worker(reg):
            def gen():
                d = yield Bind(reg, AccessType.RW)
                start = rt.sched.cycle
                yield Delay(10)
                yield Unbind(d)
                spans.append((start, rt.sched.cycle))

            return gen()

        for reg in regions:
            rt.spawn(worker(reg))
        rt.run()
        return rt.sched.cycle, spans

    def _run_semaphores(self, n_workers):
        rt = SemaphoreRuntime()

        def worker():
            yield Lock("whole_array")
            yield Delay(10)
            yield Unlock("whole_array")

        for _ in range(n_workers):
            rt.spawn(worker())
        rt.run()
        return rt.sched.cycle

    def test_disjoint_regions_finish_in_parallel(self):
        total, spans = self._run_binding(
            [Region("a")[0:10], Region("a")[10:20], Region("a")[20:30]]
        )
        sem_total = self._run_semaphores(3)
        assert total < sem_total  # binding ran them concurrently

    def test_overlapping_regions_still_serialize(self):
        total, _ = self._run_binding(
            [Region("a")[0:10], Region("a")[5:15], Region("a")[12:22]]
        )
        assert total >= 2 * 10  # chains must serialize pairwise overlaps


class TestLockStackComparison:
    """The two lock implementations (Ch 4 ATT swap vs Ch 5 cache protocol)
    agree on semantics."""

    def test_both_serialize_and_complete(self):
        from repro.cache.locks import CacheLockSystem
        from repro.tracking.locks import SpinLockSystem

        att_sys = SpinLockSystem(4, cs_cycles=5)
        att_accs = att_sys.run()
        cache_sys = CacheLockSystem(4, cs_cycles=5)
        cache_accs = cache_sys.run()
        assert len(att_accs) == len(cache_accs) == 4
        assert att_sys.mutual_exclusion_held
        assert cache_sys.mutual_exclusion_held

    def test_cache_locks_generate_less_memory_traffic(self):
        """§5.3.2: spinning on the cached copy replaces memory reads."""
        from repro.cache.locks import CacheLockSystem

        sys_ = CacheLockSystem(4, cs_cycles=60)
        accs = sys_.run()
        total_spins = sum(a.spin_reads for a in accs)
        total_mem = sum(a.memory_ops for a in accs)
        assert total_spins > total_mem  # most waiting is cache-local


class TestEndToEndMachine:
    def test_partial_cf_machine_matches_its_network_description(self):
        """CFMConfig, PartialCFSystem and PartiallySynchronousOmega agree
        on the same 64-bank machine."""
        from repro.core.config import CFMConfig
        from repro.network.partial import (
            PartialCFSystem,
            PartiallySynchronousOmega,
            configuration_table,
        )

        net = PartiallySynchronousOmega(64, circuit_columns=3)
        sys_ = PartialCFSystem(n_procs=64, n_modules=8, bank_cycle=1)
        assert net.n_modules == sys_.n_modules
        assert net.banks_per_module == sys_.config.banks_per_module
        row = configuration_table(64)[3]
        assert row.n_modules == 8
        assert row.block_words == sys_.config.block_words

    def test_table_3_3_row_runs_on_the_engine(self):
        """The ℓ=256, c=2, 8-bank configuration actually executes with the
        latency Table 3.3 promises."""
        from repro.core.cfm import AccessKind, CFMemory
        from repro.core.config import CFMConfig, tradeoff_table

        row = next(r for r in tradeoff_table(256, 2) if r.n_banks == 8)
        cfg = CFMConfig(
            n_procs=row.n_procs, word_width=row.word_width, bank_cycle=2
        )
        assert cfg.block_size_bits == 256
        mem = CFMemory(cfg)
        acc = mem.issue(0, AccessKind.READ, 0)
        mem.drain()
        assert acc.latency == row.memory_latency == 9

"""Tests for the two-level hierarchical CFM (§5.4.1–5.4.2, Table 5.3)."""

import pytest

from repro.cache.state import CacheLineState as S
from repro.hierarchy.hierarchical import (
    HierarchicalCFM,
    IllegalStateCombination,
    legal_state_combination,
)
from repro.hierarchy.latency import HierarchicalLatencyModel


def make(n_clusters=4, per=4):
    return HierarchicalCFM(
        n_clusters, per, HierarchicalLatencyModel(beta_local=9, beta_global=9)
    )


class TestTable53:
    def test_legal_combinations_exactly_table_5_3(self):
        legal = {
            (l1, l2)
            for l1 in S
            for l2 in S
            if legal_state_combination(l1, l2)
        }
        assert legal == {
            (S.INVALID, S.INVALID),
            (S.INVALID, S.VALID),
            (S.INVALID, S.DIRTY),
            (S.VALID, S.VALID),
            (S.VALID, S.DIRTY),
            (S.DIRTY, S.DIRTY),
        }

    def test_valid_l1_under_invalid_l2_illegal(self):
        assert not legal_state_combination(S.VALID, S.INVALID)
        assert not legal_state_combination(S.DIRTY, S.VALID)
        assert not legal_state_combination(S.DIRTY, S.INVALID)


class TestReadPath:
    def test_l1_hit_one_cycle(self):
        h = make()
        h.read(0, 7)
        assert h.read(0, 7) == 1

    def test_l2_hit_costs_beta_local(self):
        h = make()
        h.read(0, 7)  # fills cluster 0's L2
        assert h.read(1, 7) == 9  # cluster peer: L2 hit

    def test_global_clean_costs_model_value(self):
        h = make()
        assert h.read(0, 7) == 27

    def test_dirty_remote_costs_model_value(self):
        """The Table 5.5 'retrieve from dirty remote' path: 63 cycles."""
        h = make()
        h.write(0, 7)
        assert h.read(5, 7) == 63

    def test_invariants_hold_after_reads(self):
        h = make()
        for p in (0, 1, 5, 9, 13):
            h.read(p, 7)
        h.check_invariants()


class TestWritePath:
    def test_write_obtains_dirty_at_both_levels(self):
        h = make()
        h.write(0, 7)
        assert h.l1[0][7] is S.DIRTY
        assert h.l2[0][7] is S.DIRTY
        h.check_invariants()

    def test_write_invalidates_other_clusters(self):
        h = make()
        h.read(5, 7)
        h.read(9, 7)
        h.write(0, 7)
        assert 7 not in h.l1[5]
        assert 7 not in h.l2[1]
        assert 7 not in h.l2[2]
        h.check_invariants()

    def test_intra_cluster_write_after_cluster_ownership(self):
        """Write hit with L2 dirty: only an intra-cluster RI (§5.4.2)."""
        h = make()
        h.write(0, 7)
        cost = h.write(1, 7)  # same cluster
        assert cost == 9 + 9  # peer L1 write-back + local RI
        assert h.l1[1][7] is S.DIRTY
        assert 7 not in h.l1[0]
        h.check_invariants()

    def test_dirty_l1_hit_one_cycle(self):
        h = make()
        h.write(0, 7)
        assert h.write(0, 7) == 1

    def test_remote_dirty_write_flushes_chain(self):
        h = make()
        h.write(0, 7)
        h.write(5, 7)  # remote cluster takes ownership
        assert h.l1[5][7] is S.DIRTY
        assert h.l2[1][7] is S.DIRTY
        assert 7 not in h.l2[0]
        h.check_invariants()

    def test_single_dirty_owner_after_write_storm(self):
        h = make()
        for p in (0, 5, 9, 13, 2, 6):
            h.write(p, 7)
        dirty = [p for p in range(h.n_procs) if h.l1[p].get(7) is S.DIRTY]
        assert len(dirty) == 1
        h.check_invariants()


class TestControllersAndStats:
    def test_controller_logs_events(self):
        h = make()
        h.read(0, 7)
        assert h.controllers[0].served  # the global read went through NC 0

    def test_stats_accumulate(self):
        h = make()
        h.read(0, 7)
        h.read(0, 7)
        h.write(5, 7)
        assert h.stats.reads == 2
        assert h.stats.writes == 1
        assert h.stats.l1_hits == 1
        assert h.stats.global_clean >= 1

    def test_cluster_of(self):
        h = make()
        assert h.cluster_of(0) == 0
        assert h.cluster_of(15) == 3
        with pytest.raises(ValueError):
            h.cluster_of(16)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            HierarchicalCFM(0, 4)

"""Tests for barrier and pipeline patterns (§6.4.3, Figs 6.9/6.10)."""

import pytest

from repro.binding.manager import BindingRuntime
from repro.binding.patterns import barrier_team, make_pipeline
from repro.binding.process import make_proc_array
from repro.sim.procs import Delay


class TestBarrier:
    def test_rounds_strictly_separated(self):
        """Fig 6.9: nobody starts round k+1 before everyone finished k."""
        rt = BindingRuntime()
        handles = make_proc_array("b", 5)
        trace = []

        def body(h, k):
            trace.append(("work", h.index, k, rt.sched.cycle))
            yield Delay(1 + 2 * h.index)  # deliberately uneven

        rt.bfork(handles, barrier_team(handles, body, rounds=3))
        rt.run()
        starts = {}
        for _tag, idx, k, cycle in trace:
            starts.setdefault(k, []).append(cycle)
        # Every round-k+1 start is after every round-k start + work.
        assert max(starts[0]) < min(starts[1]) + 2 * 4 + 1
        for k in (0, 1):
            assert min(starts[k + 1]) > min(starts[k])

    def test_all_processes_do_all_rounds(self):
        rt = BindingRuntime()
        handles = make_proc_array("b", 4)
        count = {}

        def body(h, k):
            count[(h.index, k)] = True
            yield Delay(1)

        rt.bfork(handles, barrier_team(handles, body, rounds=2))
        rt.run()
        assert len(count) == 8

    def test_invalid_rounds(self):
        with pytest.raises(ValueError):
            barrier_team([], lambda h, k: iter(()), rounds=0)


class TestPipeline:
    def test_fig_6_10_dependency_order(self):
        """Stage s computes item i only after stage s−1 has (wavefront)."""
        rt = BindingRuntime()
        handles = make_proc_array("p", 4)
        order = []
        gens = make_pipeline(handles, 6, lambda s, i: order.append((s, i)))
        for h, g in zip(handles, gens):
            p = rt.spawn(g, f"stage{h.index}")
            h.pid = p.pid
        rt.run()
        pos = {(s, i): k for k, (s, i) in enumerate(order)}
        for s in range(1, 4):
            for i in range(6):
                assert pos[(s, i)] > pos[(s - 1, i)]

    def test_items_processed_in_order_per_stage(self):
        rt = BindingRuntime()
        handles = make_proc_array("p", 3)
        order = []
        gens = make_pipeline(handles, 5, lambda s, i: order.append((s, i)))
        for h, g in zip(handles, gens):
            h.pid = rt.spawn(g).pid
        rt.run()
        for s in range(3):
            items = [i for (st, i) in order if st == s]
            assert items == sorted(items)

    def test_stages_overlap_in_time(self):
        """The point of pipelining: stage 1 starts before stage 0 ends."""
        rt = BindingRuntime()
        handles = make_proc_array("p", 2)
        trace = []
        gens = make_pipeline(
            handles, 8, lambda s, i: trace.append((s, i, rt.sched.cycle))
        )
        for h, g in zip(handles, gens):
            h.pid = rt.spawn(g).pid
        rt.run()
        s0_last = max(c for s, _i, c in trace if s == 0)
        s1_first = min(c for s, _i, c in trace if s == 1)
        assert s1_first < s0_last

    def test_empty_pipeline_rejected(self):
        from repro.binding.patterns import pipeline_stage
        from repro.binding.process import ProcHandle

        with pytest.raises(ValueError):
            list(pipeline_stage(ProcHandle("p", 0), None, 0, lambda i: None))


class TestWavefront:
    def _run(self, rows, cols, steps):
        from repro.binding.manager import BindingRuntime
        from repro.binding.patterns import make_wavefront
        from repro.binding.process import make_proc_array

        rt = BindingRuntime()
        flat = make_proc_array("w", rows * cols)
        grid = [flat[r * cols:(r + 1) * cols] for r in range(rows)]
        order = []
        gens = make_wavefront(
            grid, steps, lambda r, c, k: order.append((r, c, k))
        )
        i = 0
        for r in range(rows):
            for c in range(cols):
                grid[r][c].pid = rt.spawn(gens[i], f"cell{r},{c}").pid
                i += 1
        rt.run()
        return order

    def test_2d_dependency_order(self):
        """§6.4.3's 2-D pipelining: cell (r,c) at step k follows both its
        north and west neighbours at step k."""
        order = self._run(3, 3, 4)
        pos = {(r, c, k): i for i, (r, c, k) in enumerate(order)}
        for r in range(3):
            for c in range(3):
                for k in range(4):
                    if r > 0:
                        assert pos[(r, c, k)] > pos[(r - 1, c, k)]
                    if c > 0:
                        assert pos[(r, c, k)] > pos[(r, c - 1, k)]

    def test_all_cells_do_all_steps(self):
        order = self._run(2, 4, 3)
        assert len(order) == 2 * 4 * 3
        assert len(set(order)) == len(order)

    def test_invalid_steps(self):
        import pytest as _pytest

        from repro.binding.patterns import wavefront_cell
        from repro.binding.process import ProcHandle

        with _pytest.raises(ValueError):
            list(wavefront_cell(ProcHandle("w", 0), None, None, 0,
                                lambda k: None))

"""Degenerate and boundary configurations across the stack.

A library a downstream user adopts gets handed the smallest and oddest
machines first; every layer must behave (or fail loudly) there.
"""

import pytest

from repro.cache.protocol import CacheSystem
from repro.core.atspace import ATSpace
from repro.core.block import Block
from repro.core.cfm import AccessKind, CFMemory
from repro.core.config import CFMConfig
from repro.network.partial import PartialCFSystem
from repro.network.synchronous import SynchronousOmegaNetwork


class TestSingleProcessor:
    def test_one_proc_one_bank_machine(self):
        cfg = CFMConfig(n_procs=1, bank_cycle=1)
        assert cfg.n_banks == 1
        assert cfg.block_access_time == 1
        mem = CFMemory(cfg)
        acc = mem.issue(0, AccessKind.READ, 0)
        mem.drain()
        assert acc.latency == 1

    def test_one_proc_pipelined_banks(self):
        cfg = CFMConfig(n_procs=1, bank_cycle=4)
        assert cfg.n_banks == 4
        mem = CFMemory(cfg)
        acc = mem.issue(0, AccessKind.WRITE, 0, data=Block.of_values([1] * 4))
        mem.drain()
        assert acc.latency == 7  # 4 + 4 − 1

    def test_single_proc_cache_system(self):
        sys_ = CacheSystem(1)
        op = sys_.store(0, 0, {0: 5})
        sys_.run_ops([op])
        f = sys_.flush(0, 0)
        sys_.run_ops([f])
        assert sys_.mem.peek_block(0).values[0] == 5


class TestTinyNetworks:
    def test_two_port_synchronous_omega(self):
        net = SynchronousOmegaNetwork(2)
        assert net.verify_period()
        assert net.permutation(1) == [1, 0]

    def test_atspace_single_bank(self):
        space = ATSpace(1)
        assert space.partitions_are_exclusive()
        assert space.bank_at(0, 99) == 0


class TestUnbalancedPartialSystems:
    def test_more_clusters_than_modules(self):
        """16 processors over 2 modules: clusters share the modules
        round-robin, divisions stay in range."""
        sys_ = PartialCFSystem(n_procs=16, n_modules=2, bank_cycle=1)
        assert sys_.n_clusters == 2
        for p in range(16):
            assert 0 <= sys_.local_module(p) < 2
            assert 0 <= sys_.division_of(p) < 8

    def test_minimum_partial_system(self):
        sys_ = PartialCFSystem(n_procs=2, n_modules=2, bank_cycle=1)
        assert sys_.beta == 1
        assert not sys_.conflicts(0, 1, 0, 1)


class TestEngineFlags:
    def test_conflict_checking_can_be_disabled(self):
        """check_conflicts=False must not change conflict-free behaviour
        (it only skips the assertion machinery)."""
        cfg = CFMConfig(n_procs=4)
        mem = CFMemory(cfg, check_conflicts=False)
        accs = [mem.issue(p, AccessKind.READ, 0) for p in range(4)]
        mem.drain()
        assert all(a.latency == 4 for a in accs)

    def test_result_unavailable_before_completion(self):
        mem = CFMemory(CFMConfig(n_procs=4))
        acc = mem.issue(0, AccessKind.READ, 0)
        with pytest.raises(ValueError):
            _ = acc.result
        with pytest.raises(ValueError):
            _ = acc.latency

    def test_write_access_has_no_result(self):
        mem = CFMemory(CFMConfig(n_procs=4))
        acc = mem.issue(0, AccessKind.WRITE, 0, data=Block.of_values([1] * 4))
        mem.drain()
        with pytest.raises(ValueError):
            _ = acc.result


class TestBigBlockMachines:
    def test_table_3_3_top_row_runs(self):
        """The 256-bank, 1-bit-word extreme actually executes (slowly but
        correctly): β = 257."""
        cfg = CFMConfig(n_procs=128, word_width=1, bank_cycle=2)
        assert cfg.n_banks == 256
        assert cfg.block_access_time == 257
        mem = CFMemory(cfg)
        acc = mem.issue(0, AccessKind.READ, 0)
        mem.drain()
        assert acc.latency == 257

    def test_many_concurrent_on_big_machine(self):
        cfg = CFMConfig(n_procs=64, bank_cycle=1)
        mem = CFMemory(cfg)
        accs = [mem.issue(p, AccessKind.READ, p % 4) for p in range(64)]
        mem.drain()
        assert all(a.latency == 64 for a in accs)

"""Tests for weak-consistency conditions and the trace checker (§2.2)."""

import pytest

from repro.cache.consistency import (
    AccessClass as A,
    ConsistencyViolation,
    TraceEvent,
    WeakConsistencyChecker,
    enforce_sequential_order,
    enforce_weak_order,
    pipelining_speedup,
)


def ev(proc, index, klass, issued, performed):
    return TraceEvent(proc, index, klass, issued, performed)


class TestChecker:
    def test_valid_weak_trace_passes(self):
        events = [
            ev(0, 0, A.ORDINARY_LOAD, 0, 5),
            ev(0, 1, A.ORDINARY_STORE, 1, 4),  # pipelined, out of order: fine
            ev(0, 2, A.SYNC, 6, 10),  # after all ordinary performs
            ev(0, 3, A.ORDINARY_LOAD, 11, 15),
        ]
        assert WeakConsistencyChecker(events).holds()

    def test_sync_before_prior_ordinary_violates(self):
        """Condition 2: ordinary ops must perform before a later sync."""
        events = [
            ev(0, 0, A.ORDINARY_STORE, 0, 20),
            ev(0, 1, A.SYNC, 1, 5),
        ]
        checker = WeakConsistencyChecker(events)
        assert not checker.holds()
        with pytest.raises(ConsistencyViolation):
            checker.check()

    def test_ordinary_before_prior_sync_violates(self):
        """Condition 3: syncs must perform before later ordinary ops."""
        events = [
            ev(0, 0, A.SYNC, 0, 20),
            ev(0, 1, A.ORDINARY_LOAD, 1, 5),
        ]
        assert not WeakConsistencyChecker(events).holds()

    def test_processors_checked_independently(self):
        events = [
            ev(0, 0, A.ORDINARY_STORE, 0, 100),
            ev(1, 0, A.SYNC, 1, 5),  # different processor: no constraint
        ]
        assert WeakConsistencyChecker(events).holds()


class TestScheduling:
    def test_ordinary_accesses_pipeline(self):
        sched = enforce_weak_order([(A.ORDINARY_LOAD, 10)] * 4)
        issues = [s for s, _ in sched]
        assert issues == [0, 1, 2, 3]  # one issue per slot, overlapping

    def test_sync_waits_for_everything(self):
        sched = enforce_weak_order(
            [(A.ORDINARY_LOAD, 10), (A.ORDINARY_STORE, 10), (A.SYNC, 5)]
        )
        sync_issue = sched[2][0]
        assert sync_issue >= max(p for _, p in sched[:2])

    def test_post_sync_ops_wait_for_sync(self):
        sched = enforce_weak_order([(A.SYNC, 5), (A.ORDINARY_LOAD, 10)])
        assert sched[1][0] >= sched[0][1]

    def test_weak_schedule_passes_checker(self):
        program = [
            (A.ORDINARY_LOAD, 8), (A.ORDINARY_STORE, 8), (A.SYNC, 4),
            (A.ORDINARY_LOAD, 8), (A.ORDINARY_LOAD, 8), (A.SYNC, 4),
        ]
        sched = enforce_weak_order(program)
        events = [
            ev(0, i, klass, s, p)
            for i, ((klass, _), (s, p)) in enumerate(zip(program, sched))
        ]
        assert WeakConsistencyChecker(events).holds()

    def test_sequential_never_overlaps(self):
        sched = enforce_sequential_order([(A.ORDINARY_LOAD, 10)] * 3)
        for (s0, p0), (s1, _p1) in zip(sched, sched[1:]):
            assert s1 >= p0

    def test_pipelining_speedup_grows_with_run_length(self):
        """§2.2.3: weak consistency's win comes from pipelining ordinary
        accesses between sync points."""
        short = [(A.ORDINARY_LOAD, 10)] * 2 + [(A.SYNC, 5)]
        long = [(A.ORDINARY_LOAD, 10)] * 10 + [(A.SYNC, 5)]
        assert pipelining_speedup(long) > pipelining_speedup(short) > 1.0

    def test_invalid_duration_rejected(self):
        with pytest.raises(ValueError):
            enforce_weak_order([(A.SYNC, 0)])
        with pytest.raises(ValueError):
            enforce_sequential_order([(A.SYNC, -1)])

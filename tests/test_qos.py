"""QoS arbitration contract: criticality tiers, SLA metrics, invariant 12.

The load-bearing properties:

1. **Invariant 12** — arbitration never changes *which* slots exist, only
   who wins a contended one: a submission stream that never queues is
   bit-identical to the same stream of plain ``issue()`` calls, per
   engine, per policy.
2. **Engine invariance under contention** — grants happen at the
   ``_finish`` seam every engine drives at identical slots, so the mixed-
   criticality overload runs are bit-identical across reference, batch,
   vectorized and stacked pins (invariants 10–11 through the QoS layer).
3. **Priority semantics** — a contended grant goes to the lowest
   criticality rank, FIFO within a rank; ``arbitration="fifo"`` is pure
   submission order.
4. **Table 5.4 dominance** — in the NC queue, criticality reorders events
   only *within* an event-type priority class; untagged events keep the
   exact ``(priority, seq)`` order.
5. **SLA accounting** — per-tier histograms/deadline counters ride finish
   callbacks (slots) or the service accounting path (ms), never the
   simulation's metrics registry.
"""

from __future__ import annotations

import pytest

from repro.core.block import Block
from repro.core.cfm import (
    ARBITRATION_POLICIES,
    AccessKind,
    CFMemory,
)
from repro.core.config import CFMConfig
from repro.fastpath.engine import ENGINES, engine_available
from repro.hierarchy.controller import EventType, NetworkController
from repro.obs.metrics import MetricsRegistry
from repro.obs.sla import SlaTracker
from repro.sim.criticality import (
    BULK,
    DEFAULT_RANK,
    LATENCY_CRITICAL,
    NORMAL,
    TIERS,
    parse_tier,
    rank_of,
)


def _engines():
    return [e for e in ENGINES if engine_available(e, "cfm")]


def _mem(n_procs=4, bank_cycle=1, **kw):
    return CFMemory(CFMConfig(n_procs=n_procs, bank_cycle=bank_cycle), **kw)


def _wblock(mem, offset, stamp="w"):
    return Block.of_values([offset + k for k in range(mem.n_banks)], stamp)


def _drain(mem):
    while mem.active or mem.pending():
        mem.run(4 * mem.cfg.block_access_time)


# --------------------------------------------------------------------------
# The criticality vocabulary


class TestCriticalityModule:
    def test_tiers_and_ranks(self):
        assert TIERS == (LATENCY_CRITICAL, NORMAL, BULK)
        assert rank_of(LATENCY_CRITICAL) < rank_of(NORMAL) < rank_of(BULK)
        assert rank_of(None) == rank_of(NORMAL) == DEFAULT_RANK

    def test_parse_tier(self):
        assert parse_tier(None) is None
        for tier in TIERS:
            assert parse_tier(tier) == tier
        with pytest.raises(ValueError, match="latency_critical"):
            parse_tier("urgent")


# --------------------------------------------------------------------------
# Submit / grant semantics on the core module


class TestSubmitArbitration:
    def test_idle_processor_issues_immediately(self):
        mem = _mem()
        pend = mem.submit(0, AccessKind.READ, offset=3,
                          criticality=LATENCY_CRITICAL, deadline=50)
        assert pend.granted and pend.access is not None
        assert pend.access.criticality == LATENCY_CRITICAL
        assert pend.access.submit_slot == 0
        assert pend.access.deadline_slot == 50
        # Immediate issue: nothing queued, nothing to grant or contend.
        assert mem.qos_counts == {"granted": 0, "queued": 0, "contended": 0}

    def test_busy_processor_queues_then_grants_at_finish(self):
        mem = _mem()
        first = mem.submit(0, AccessKind.READ, offset=0)
        queued = mem.submit(0, AccessKind.READ, offset=1, criticality=BULK)
        assert not queued.granted
        assert mem.pending(0) == 1 == mem.pending()
        assert mem.qos_counts["queued"] == 1
        mem.run(mem.cfg.block_access_time + 1)
        assert first.access.complete_slot is not None
        assert queued.granted  # granted the slot its predecessor freed
        mem.run(2 * mem.cfg.block_access_time)
        assert queued.access.complete_slot is not None
        # One waiter is not contention: the counter stays zero, and the
        # grant counter records exactly the one queued op.
        assert mem.qos_counts["contended"] == 0
        assert mem.qos_counts["granted"] == 1

    def test_priority_beats_fifo_order_when_contended(self):
        mem = _mem()
        mem.submit(0, AccessKind.READ, offset=0)          # occupies proc 0
        bulk = mem.submit(0, AccessKind.READ, offset=1, criticality=BULK)
        crit = mem.submit(0, AccessKind.READ, offset=2,
                          criticality=LATENCY_CRITICAL)
        _drain(mem)
        assert mem.qos_counts["contended"] == 1
        # The critical op overtook the earlier-submitted bulk op.
        assert crit.access.complete_slot < bulk.access.complete_slot

    def test_equal_rank_contention_stays_fifo(self):
        mem = _mem()
        mem.submit(0, AccessKind.READ, offset=0)
        a = mem.submit(0, AccessKind.READ, offset=1, criticality=NORMAL)
        b = mem.submit(0, AccessKind.READ, offset=2, criticality=NORMAL)
        _drain(mem)
        assert a.access.complete_slot < b.access.complete_slot

    def test_fifo_policy_ignores_rank(self):
        mem = _mem(arbitration="fifo")
        mem.submit(0, AccessKind.READ, offset=0)
        bulk = mem.submit(0, AccessKind.READ, offset=1, criticality=BULK)
        crit = mem.submit(0, AccessKind.READ, offset=2,
                          criticality=LATENCY_CRITICAL)
        _drain(mem)
        assert bulk.access.complete_slot < crit.access.complete_slot

    def test_writes_carry_data_through_the_queue(self):
        mem = _mem()
        mem.submit(0, AccessKind.READ, offset=0)
        w = mem.submit(0, AccessKind.WRITE, offset=4,
                       data=_wblock(mem, 4), criticality=LATENCY_CRITICAL)
        _drain(mem)
        assert w.access.complete_slot is not None
        assert mem.peek_block(4).words[0].value == 4

    def test_validation(self):
        mem = _mem()
        with pytest.raises(ValueError, match="out of range"):
            mem.submit(9, AccessKind.READ, offset=0)
        with pytest.raises(ValueError, match="deadline"):
            mem.submit(0, AccessKind.READ, offset=0, deadline=0)
        with pytest.raises(ValueError, match="latency_critical"):
            mem.submit(0, AccessKind.READ, offset=0, criticality="asap")
        with pytest.raises(ValueError, match="arbitration"):
            _mem(arbitration="roulette")
        assert ARBITRATION_POLICIES == ("priority", "fifo")

    def test_deadline_met_and_qos_latency(self):
        mem = _mem()
        ok = mem.submit(0, AccessKind.READ, offset=0, deadline=100)
        tight = mem.submit(1, AccessKind.READ, offset=0, deadline=1)
        plain = mem.submit(2, AccessKind.READ, offset=0)
        _drain(mem)
        assert ok.access.deadline_met is True
        assert tight.access.deadline_met is False  # beta > 1 slot
        assert plain.access.deadline_met is None
        # Immediate issue: the QoS clock equals the plain latency clock.
        assert ok.access.qos_latency == ok.access.latency

    def test_queueing_counts_against_qos_latency(self):
        mem = _mem()
        mem.submit(0, AccessKind.READ, offset=0)
        queued = mem.submit(0, AccessKind.READ, offset=1)
        _drain(mem)
        acc = queued.access
        assert acc.submit_slot == 0 < acc.issue_slot
        assert acc.qos_latency == acc.complete_slot - acc.submit_slot + 1
        assert acc.qos_latency > acc.latency


class TestQosMetrics:
    def test_tagged_completions_feed_tier_metrics(self):
        metrics = MetricsRegistry()
        mem = _mem(metrics=metrics)
        mem.submit(0, AccessKind.READ, offset=0,
                   criticality=LATENCY_CRITICAL, deadline=100)
        mem.submit(1, AccessKind.READ, offset=0, criticality=BULK, deadline=1)
        _drain(mem)
        hist = metrics.histogram(f"cfm.latency[{LATENCY_CRITICAL}]")
        assert hist.total() == 1
        deadline = metrics.counter("cfm.deadline")
        assert deadline[f"{LATENCY_CRITICAL}.met"] == 1
        assert deadline[f"{BULK}.missed"] == 1

    def test_untagged_runs_leave_no_qos_metric_names(self):
        # The pre-QoS metric surface must stay byte-identical for untagged
        # traffic: no per-tier histogram or deadline counter appears.
        metrics = MetricsRegistry()
        mem = _mem(metrics=metrics)
        mem.submit(0, AccessKind.READ, offset=0)
        mem.issue(1, AccessKind.READ, offset=0)
        _drain(mem)
        names = set(metrics.snapshot())
        assert not any("cfm.latency[" in n for n in names)
        assert "cfm.deadline" not in names


# --------------------------------------------------------------------------
# Invariant 12: zero-contention bit-identity, every engine, every policy


def _closed_loop(n_procs, bank_cycle, slots, engine, use_submit, arbitration):
    mem = _mem(n_procs, bank_cycle, arbitration=arbitration)
    log = []

    def reissue(acc):
        log.append((acc.access_id, acc.proc, acc.complete_slot,
                    [w.value for w in acc.result.words]))
        tier = TIERS[acc.proc % len(TIERS)] if use_submit else None
        if use_submit:
            mem.submit(acc.proc, AccessKind.READ, offset=acc.proc,
                       on_finish=reissue, criticality=tier)
        else:
            mem.issue(acc.proc, AccessKind.READ, offset=acc.proc,
                      on_finish=reissue)

    for p in range(n_procs):
        if use_submit:
            mem.submit(p, AccessKind.READ, offset=p, on_finish=reissue,
                       criticality=TIERS[p % len(TIERS)])
        else:
            mem.issue(p, AccessKind.READ, offset=p, on_finish=reissue)
    mem.run_engine(slots, engine=engine)
    return log, mem.slot, dict(mem.qos_counts)


class TestZeroContentionIdentity:
    @pytest.mark.parametrize("n_procs,bank_cycle", [(4, 1), (8, 2)])
    def test_tagged_submit_is_bit_identical_to_issue(self, n_procs,
                                                     bank_cycle):
        for engine in _engines():
            ref_log, ref_end, _ = _closed_loop(
                n_procs, bank_cycle, 300, engine, False, "priority")
            for arbitration in ARBITRATION_POLICIES:
                log, end, counts = _closed_loop(
                    n_procs, bank_cycle, 300, engine, True, arbitration)
                assert (log, end) == (ref_log, ref_end), (
                    f"engine={engine} arbitration={arbitration}")
                assert counts["contended"] == 0 and counts["queued"] == 0


# --------------------------------------------------------------------------
# Satellite: mixed-criticality determinism sweep across every engine pin


SWEEP_SHAPES = [(4, 1), (8, 2), (16, 4), (64, 16)]


class TestEngineDifferentialSweep:
    @pytest.mark.parametrize("n_procs,bank_cycle", SWEEP_SHAPES)
    def test_qos_reports_engine_invariant(self, n_procs, bank_cycle):
        from repro.obs.bench import run_spec

        banks = n_procs * bank_cycle
        params = {
            "n_procs": n_procs, "bank_cycle": bank_cycle,
            # ~1.3x per-proc service capacity: overloaded enough to queue,
            # bounded enough that the drain stays short on (64, 16).
            "cycles": min(1_200, 30 * banks),
            "rate": round(0.65 / banks, 6),
            "bulk_rate": round(0.65 / banks, 6),
        }
        for arbitration in ARBITRATION_POLICIES:
            baseline = None
            for engine in [None] + _engines():
                spec_params = dict(params, arbitration=arbitration)
                if engine is not None:
                    spec_params["engine"] = engine
                report = run_spec({"system": "qos", "params": spec_params})
                report["params"].pop("engine", None)
                if baseline is None:
                    baseline = report
                else:
                    assert report == baseline, (
                        f"qos report diverged: engine={engine} "
                        f"arbitration={arbitration} shape="
                        f"({n_procs}, {bank_cycle})")

    def test_sweep_actually_contends(self):
        from repro.obs.bench import run_spec

        report = run_spec({"system": "qos", "params": {
            "n_procs": 8, "bank_cycle": 2, "cycles": 480,
            "rate": 0.05, "bulk_rate": 0.05}})
        assert report["qos"]["entry_queue"]["contended"] > 0
        tiers = report["qos"]["sla"]["tiers"]
        assert LATENCY_CRITICAL in tiers and BULK in tiers
        for entry in tiers.values():
            assert {"n", "mean", "min", "max", "p50", "p99", "p999"} <= set(entry)
        lc = tiers[LATENCY_CRITICAL]
        assert lc["deadline"]["met"] + lc["deadline"]["missed"] == lc["n"]


# --------------------------------------------------------------------------
# NC queue: Table 5.4 priority dominates, criticality reorders within it


class TestControllerCriticality:
    def test_event_priority_dominates_criticality(self):
        nc = NetworkController(0)
        nc.enqueue(EventType.READ, offset=1, criticality=LATENCY_CRITICAL)
        nc.enqueue(EventType.WRITE_BACK, offset=2, criticality=BULK)
        served = nc.drain()
        # A bulk write-back still beats a latency-critical read: deadlock
        # freedom does not bend to QoS.
        assert [ev.event_type for ev in served] == [
            EventType.WRITE_BACK, EventType.READ]

    def test_criticality_reorders_within_a_class(self):
        nc = NetworkController(0)
        bulk = nc.enqueue(EventType.READ, offset=1, criticality=BULK)
        crit = nc.enqueue(EventType.READ, offset=2,
                          criticality=LATENCY_CRITICAL)
        norm = nc.enqueue(EventType.READ, offset=3)
        assert nc.drain() == [crit, norm, bulk]

    def test_untagged_keeps_priority_seq_order(self):
        tagged = NetworkController(0)
        plain = NetworkController(0)
        events = [(EventType.READ, 1), (EventType.WRITE_BACK, 2),
                  (EventType.READ_INVALIDATE, 3), (EventType.READ, 4),
                  (EventType.INVALIDATION_FROM_ABOVE, 5)]
        for et, off in events:
            tagged.enqueue(et, offset=off, criticality=NORMAL)
            plain.enqueue(et, offset=off)
        order_tagged = [(e.event_type, e.offset) for e in tagged.drain()]
        order_plain = [(e.event_type, e.offset) for e in plain.drain()]
        assert order_tagged == order_plain


# --------------------------------------------------------------------------
# Hierarchy: tagging everything "normal" is bit-identical to no tags


def _hier_fingerprint(h, ops):
    return ([(op.gproc, op.kind.value, op.offset, op.issue_slot,
              op.done_slot, op.nc_fetches,
              None if op.result is None else [w.value for w in op.result.words])
             for op in ops], h.slot)


class TestHierarchyCriticality:
    def _run(self, criticality):
        from repro.hierarchy.slot_accurate import SlotAccurateHierarchy

        h = SlotAccurateHierarchy(2, 2, bank_cycle=1)
        ops = []
        # Cross-cluster shared offsets: every op goes through the NC queue.
        for g in range(4):
            ops.append(h.load(g, g % 3, criticality=criticality))
            ops.append(h.store(g, (g + 1) % 3, {0: g + 10},
                               criticality=criticality))
        h.run_ops(ops)
        h.check_invariants()
        return _hier_fingerprint(h, ops)

    def test_normal_tags_bit_identical_to_untagged(self):
        assert self._run(NORMAL) == self._run(None)

    def test_bad_tier_rejected(self):
        from repro.hierarchy.slot_accurate import SlotAccurateHierarchy

        h = SlotAccurateHierarchy(2, 2, bank_cycle=1)
        with pytest.raises(ValueError, match="latency_critical"):
            h.load(0, 0, criticality="important")


# --------------------------------------------------------------------------
# The SLA tracker


class TestSlaTracker:
    def test_per_tier_percentiles_and_deadlines(self):
        t = SlaTracker(unit="slots", deadlines={LATENCY_CRITICAL: 50})
        t.extend(LATENCY_CRITICAL, [10, 20, 30, 40, 60])
        t.record(BULK, 500, deadline=100)
        assert t.total() == 6
        assert t.percentile(LATENCY_CRITICAL, 0.5) == 30
        assert t.percentile(LATENCY_CRITICAL, 1.0) == 60
        assert t.missed(LATENCY_CRITICAL) == 1  # the 60 against default 50
        assert t.missed(BULK) == 1
        snap = t.snapshot()
        assert snap["unit"] == "slots"
        assert list(snap["tiers"]) == [LATENCY_CRITICAL, BULK]  # canonical
        lc = snap["tiers"][LATENCY_CRITICAL]
        assert lc["n"] == 5 and lc["deadline"] == {"met": 4, "missed": 1}

    def test_quantum_preserves_fractional_units(self):
        t = SlaTracker(unit="ms", quantum=1000)
        t.extend(None, [0.25, 0.5, 1.75])  # untagged → "normal"
        assert t.percentile(NORMAL, 0.5) == 0.5
        snap = t.snapshot()["tiers"][NORMAL]
        assert snap["min"] == 0.25 and snap["max"] == 1.75
        assert "deadline" not in snap  # no deadline was ever supplied

    def test_validation(self):
        with pytest.raises(ValueError, match="quantum"):
            SlaTracker(quantum=0)
        t = SlaTracker()
        with pytest.raises(ValueError, match="latency_critical"):
            t.record("asap", 1.0)
        with pytest.raises(ValueError, match="no samples"):
            t.percentile(BULK, 0.5)


# --------------------------------------------------------------------------
# Serve spec: criticality/deadline validated, never part of the payload


class TestServeSpecQos:
    def test_fields_validated_and_kept_out_of_payload(self):
        from repro.serve.spec import validate_request

        req = validate_request({
            "id": "q1", "system": "cfm",
            "params": {"n_procs": 4, "bank_cycle": 1, "cycles": 100},
            "criticality": LATENCY_CRITICAL, "deadline_ms": 250,
        })
        assert req.criticality == LATENCY_CRITICAL
        assert req.deadline_ms == 250.0
        assert "criticality" not in req.payload
        assert "deadline_ms" not in req.payload
        untagged = validate_request({
            "id": "q2", "system": "cfm",
            "params": {"n_procs": 4, "bank_cycle": 1, "cycles": 100},
        })
        assert req.payload == untagged.payload  # same cache identity

    @pytest.mark.parametrize("field,value,match", [
        ("criticality", "urgent", "criticality"),
        ("deadline_ms", 0, "deadline_ms"),
        ("deadline_ms", -3.5, "deadline_ms"),
        ("deadline_ms", True, "deadline_ms"),
        ("deadline_ms", "fast", "deadline_ms"),
    ])
    def test_bad_values_rejected(self, field, value, match):
        from repro.serve.spec import RequestError, validate_request

        with pytest.raises(RequestError, match=match):
            validate_request({"id": "x", "system": "cfm", field: value})


# --------------------------------------------------------------------------
# Bench plumbing: the qos system and its spec matrix


class TestBenchQos:
    def test_specs_qos_pairs_priority_with_fifo(self):
        from repro.obs.bench import specs_qos

        specs = specs_qos(quick=True)
        assert len(specs) % 2 == 0
        for i in range(0, len(specs), 2):
            prio, fifo = specs[i]["params"], specs[i + 1]["params"]
            assert prio["arbitration"] == "priority"
            assert fifo["arbitration"] == "fifo"
            assert {k: v for k, v in prio.items() if k != "arbitration"} \
                == {k: v for k, v in fifo.items() if k != "arbitration"}
        assert any("degraded_bank" in s["params"] for s in specs)

    def test_degraded_mode_keeps_qos_accounting(self):
        from repro.obs.bench import run_spec

        report = run_spec({"system": "qos", "params": {
            "n_procs": 8, "bank_cycle": 2, "cycles": 400,
            "rate": 0.05, "bulk_rate": 0.05, "degraded_bank": 1}})
        assert report["params"]["degraded_bank"] == 1
        assert report["qos"]["sla"]["tiers"]

"""Tests for the full-map directory baseline (§5.1.2)."""

import pytest

from repro.cache.directory_based import (
    FullMapDirectorySystem,
    invalidation_message_cost,
)


class TestFullMapDirectory:
    def test_read_miss_updates_presence(self):
        sys_ = FullMapDirectorySystem(4)
        sys_.read(0, 7)
        sys_.read(2, 7)
        assert sys_.directory[7].presence == {0, 2}
        sys_.check_coherence_invariant()

    def test_read_hit_free(self):
        sys_ = FullMapDirectorySystem(4)
        sys_.read(0, 7)
        assert sys_.read(0, 7) == 0

    def test_write_invalidates_sharers_with_acks(self):
        """DASH-style: k sharers cost k invalidations + k acknowledgements."""
        sys_ = FullMapDirectorySystem(8)
        for p in range(5):
            sys_.read(p, 3)
        before = sys_.messages.invalidations
        sys_.write(0, 3)
        assert sys_.messages.invalidations - before == 4
        assert sys_.messages.acknowledgements == 4
        assert sys_.directory[3].presence == {0}
        assert sys_.directory[3].dirty
        sys_.check_coherence_invariant()

    def test_write_to_remote_dirty_fetches_and_owns(self):
        sys_ = FullMapDirectorySystem(4)
        sys_.write(1, 3)
        latency = sys_.write(2, 3)
        assert latency > 0
        assert sys_.directory[3].presence == {2}
        assert sys_.caches[1].get(3) is None
        sys_.check_coherence_invariant()

    def test_dirty_write_hit_free(self):
        sys_ = FullMapDirectorySystem(4)
        sys_.write(1, 3)
        assert sys_.write(1, 3) == 0

    def test_read_of_dirty_block_flushes_owner(self):
        sys_ = FullMapDirectorySystem(4)
        sys_.write(1, 3)
        sys_.read(0, 3)
        assert not sys_.directory[3].dirty
        assert sys_.directory[3].presence == {0, 1}
        sys_.check_coherence_invariant()

    def test_storage_overhead_grows_with_procs(self):
        """§5.1.2: the presence-bit vector scales with the machine."""
        assert FullMapDirectorySystem(16).directory_bits_per_block() == 17
        assert FullMapDirectorySystem(256).directory_bits_per_block() == 257

    def test_invalid_proc_count(self):
        with pytest.raises(ValueError):
            FullMapDirectorySystem(0)


class TestCFMComparison:
    def test_cfm_needs_no_invalidation_messages(self):
        """§5.2.3: CFM invalidations ride the block access — zero messages,
        zero acks — vs (k, k) for a full-map directory."""
        msgs, acks = invalidation_message_cost(7)
        assert (msgs, acks) == (7, 7)
        assert invalidation_message_cost(0) == (0, 0)

    def test_negative_sharers_rejected(self):
        with pytest.raises(ValueError):
            invalidation_message_cost(-1)

"""Tests for the observability layer: metrics registry, probes, artifacts."""

import json

import pytest

from repro.obs import (
    CountingProbe,
    JsonlProbe,
    MetricsRegistry,
    MultiProbe,
    RecordingProbe,
    TenantMetrics,
    drain_artifacts,
    load_probe_events,
)
from repro.sim.stats import Histogram, RunningStats, TallyCounter, Utilization


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        c1 = reg.counter("cfm.accesses")
        c1.incr("completed")
        c2 = reg.counter("cfm.accesses")
        assert c1 is c2
        assert c2["completed"] == 1

    def test_all_primitive_kinds_supported(self):
        reg = MetricsRegistry()
        assert isinstance(reg.counter("a.b"), TallyCounter)
        assert isinstance(reg.stats("a.c"), RunningStats)
        assert isinstance(reg.histogram("a.d"), Histogram)
        assert isinstance(reg.utilization("a.e"), Utilization)
        assert len(reg) == 4

    def test_kind_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError, match="already registered"):
            reg.histogram("x")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("")

    def test_hierarchical_names_with_indices(self):
        reg = MetricsRegistry()
        for k in range(4):
            reg.utilization(f"cfm.bank[{k}].util").tick(k % 2 == 0)
        names = reg.names()
        assert names == sorted(names)
        assert "cfm.bank[3].util" in reg

    def test_snapshot_is_json_serializable(self):
        reg = MetricsRegistry()
        reg.counter("n.c").incr("hits", 3)
        reg.stats("n.s").extend([1.0, 2.0, 3.0])
        reg.histogram("n.h").add(5, 10)
        reg.utilization("n.u").tick(True)
        snap = json.loads(reg.to_json())
        assert snap["n.c"] == {"type": "counter", "counts": {"hits": 3},
                               "total": 3}
        assert snap["n.s"]["mean"] == pytest.approx(2.0)
        assert snap["n.h"]["p50"] == 5 and snap["n.h"]["p99"] == 5
        assert snap["n.u"] == {"type": "utilization", "busy": 1, "total": 1,
                               "fraction": 1.0}

    def test_snapshot_of_empty_instruments_does_not_raise(self):
        reg = MetricsRegistry()
        reg.stats("empty.s")
        reg.histogram("empty.h")
        snap = reg.snapshot()
        assert snap["empty.s"] == {"type": "stats", "n": 0}
        assert snap["empty.h"] == {"type": "histogram", "n": 0}

    def test_fractions_filters_by_prefix(self):
        reg = MetricsRegistry()
        reg.utilization("cfm.bank[0].util").tick(True)
        reg.utilization("cfm.bank[1].util").tick(False)
        reg.utilization("net.xbar.out[0].util").tick(True)
        reg.counter("cfm.bank.count")  # not a Utilization: excluded
        fr = reg.fractions("cfm.bank")
        assert fr == {"cfm.bank[0].util": 1.0, "cfm.bank[1].util": 0.0}


class TestTenantMetrics:
    def test_named_tenants_get_their_own_registry(self):
        tm = TenantMetrics(max_tenants=4)
        a = tm.registry("alice")
        assert tm.registry("alice") is a
        tm.registry("bob")
        assert tm.tenants() == ["alice", "bob"]

    def test_family_never_exceeds_max_tenants(self):
        # The overflow slot is reserved INSIDE the bound.  With
        # max_tenants distinct labels, the family must hold exactly
        # max_tenants registries: max_tenants - 1 named ones plus the
        # materialized overflow registry — never max_tenants + 1 (the
        # regression: the bound check admitted max_tenants named tenants
        # and then created "<overflow>" on top of them).
        max_tenants = 5
        tm = TenantMetrics(max_tenants=max_tenants)
        regs = [tm.registry(f"t{i}") for i in range(max_tenants)]
        assert len(tm) == max_tenants
        assert TenantMetrics.OVERFLOW in tm
        named = [t for t in tm.tenants() if t != TenantMetrics.OVERFLOW]
        assert len(named) == max_tenants - 1
        # The last arrival shares the overflow registry.
        assert regs[-1] is tm.registry(TenantMetrics.OVERFLOW)
        # Further strangers keep sharing it — the family stays put.
        for i in range(10):
            assert tm.registry(f"late{i}") is regs[-1]
        assert len(tm) == max_tenants

    def test_admitted_tenants_survive_overflow(self):
        tm = TenantMetrics(max_tenants=3)
        a = tm.registry("a")
        b = tm.registry("b")
        tm.registry("c")  # spills: only 2 named slots beside overflow
        assert tm.registry("a") is a and tm.registry("b") is b

    def test_max_tenants_one_sends_everyone_to_overflow(self):
        tm = TenantMetrics(max_tenants=1)
        reg = tm.registry("only")
        assert tm.tenants() == [TenantMetrics.OVERFLOW]
        assert tm.registry("other") is reg

    def test_snapshot_nests_by_tenant(self):
        tm = TenantMetrics(max_tenants=8)
        tm.registry("a").counter("requests").incr("total")
        snap = tm.snapshot()
        assert snap["a"]["requests"]["counts"]["total"] == 1

    def test_validation(self):
        with pytest.raises(ValueError, match="max_tenants"):
            TenantMetrics(max_tenants=0)
        with pytest.raises(ValueError, match="non-empty"):
            TenantMetrics().registry("")


class TestProbes:
    def test_recording_probe_select(self):
        p = RecordingProbe()
        p.emit("cfm", "issue", 0, proc=1)
        p.emit("cfm", "complete", 17, proc=1, latency=17)
        p.emit("mem", "conflict", 3, proc=0)
        assert len(p) == 3
        assert [ev.t for ev in p.select("cfm")] == [0, 17]
        assert p.select(event="conflict")[0].fields["proc"] == 0
        p.clear()
        assert len(p) == 0

    def test_counting_probe(self):
        p = CountingProbe()
        for t in range(5):
            p.emit("x", "y", t)
        assert p.count == 5

    def test_multi_probe_fans_out(self):
        a, b = RecordingProbe(), CountingProbe()
        m = MultiProbe([a, b])
        m.emit("s", "e", 1, k=2)
        assert len(a) == 1 and b.count == 1
        assert a.events[0].fields == {"k": 2}

    def test_jsonl_probe_roundtrip(self, tmp_path):
        path = tmp_path / "run.probe.jsonl"
        with JsonlProbe.open(path, description="unit test") as p:
            p.emit("cfm", "issue", 0, proc=2, kind="read")
            p.emit("cfm", "complete", 17, proc=2, latency=17)
        events = load_probe_events(path)
        assert [(e.source, e.event, e.t) for e in events] == [
            ("cfm", "issue", 0), ("cfm", "complete", 17),
        ]
        assert events[1].fields == {"proc": 2, "latency": 17}

    def test_jsonl_header_validated(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"format": "something-else"}\n')
        with pytest.raises(ValueError, match="not a probe trace"):
            load_probe_events(bad)
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(ValueError, match="empty probe trace"):
            load_probe_events(empty)


class TestArtifactCapture:
    def test_emit_table_is_recorded_structurally(self, capsys):
        from repro.report import emit_table

        drain_artifacts()
        emit_table("T", ["a", "b"], [(1, 2), (3, 4)])
        capsys.readouterr()
        records = drain_artifacts()
        assert records == [{
            "kind": "table", "title": "T", "headers": ["a", "b"],
            "rows": [["1", "2"], ["3", "4"]],
        }]

    def test_emit_series_records_full_resolution(self, capsys):
        from repro.report import emit_series

        drain_artifacts()
        xs = [i / 100 for i in range(50)]
        emit_series("S", "rate", xs, {"eff": [1.0] * 50})
        capsys.readouterr()
        (rec,) = drain_artifacts()
        assert rec["kind"] == "series"
        assert len(rec["x"]) == 50  # not decimated like the printout
        assert rec["series"]["eff"] == [1.0] * 50

    def test_env_sink_appends_jsonl(self, tmp_path, monkeypatch, capsys):
        from repro.report import emit_table

        sink = tmp_path / "artifacts.jsonl"
        monkeypatch.setenv("REPRO_BENCH_JSONL", str(sink))
        drain_artifacts()
        emit_table("T1", ["x"], [(1,)])
        emit_table("T2", ["x"], [(2,)])
        capsys.readouterr()
        drain_artifacts()
        lines = [json.loads(l) for l in sink.read_text().splitlines()]
        assert [r["title"] for r in lines] == ["T1", "T2"]

"""Tests for effective-bandwidth analysis (§3.1, §3.4)."""

import pytest

from repro.analysis.bandwidth import (
    BandwidthPoint,
    bandwidth_comparison,
    effective_bandwidth,
)
from repro.core.config import CFMConfig


class TestEffectiveBandwidth:
    def test_peak_is_banks_over_cycle(self):
        cfg = CFMConfig(n_procs=8, bank_cycle=2)
        pt = effective_bandwidth(cfg, 0.01, 1.0)
        assert pt.peak_words_per_cycle == 8.0  # 16 banks / 2 cycles

    def test_scales_with_rate_until_peak(self):
        cfg = CFMConfig(n_procs=8, bank_cycle=1)
        low = effective_bandwidth(cfg, 0.01, 1.0)
        high = effective_bandwidth(cfg, 0.02, 1.0)
        assert high.effective_words_per_cycle == pytest.approx(
            2 * low.effective_words_per_cycle
        )

    def test_demand_clipped_at_peak(self):
        cfg = CFMConfig(n_procs=8, bank_cycle=1)
        pt = effective_bandwidth(cfg, 1.0, 1.0)  # absurd offered load
        assert pt.effective_words_per_cycle == pt.peak_words_per_cycle
        assert pt.utilization == 1.0

    def test_efficiency_discounts_linearly(self):
        cfg = CFMConfig(n_procs=8, bank_cycle=1)
        full = effective_bandwidth(cfg, 0.02, 1.0)
        half = effective_bandwidth(cfg, 0.02, 0.5)
        assert half.effective_words_per_cycle == pytest.approx(
            full.effective_words_per_cycle / 2
        )

    def test_invalid_inputs(self):
        cfg = CFMConfig(n_procs=4)
        with pytest.raises(ValueError):
            effective_bandwidth(cfg, -0.1, 1.0)
        with pytest.raises(ValueError):
            effective_bandwidth(cfg, 0.1, 1.5)


class TestComparison:
    def test_cfm_dominates_at_every_rate(self):
        rows = bandwidth_comparison()
        for row in rows:
            assert (row["cfm_words_per_cycle"]
                    >= row["conventional_words_per_cycle"])

    def test_gap_widens_with_load(self):
        """The §3.4 story in bandwidth terms: conflicts eat a growing
        share of the conventional machine's delivered words."""
        rows = bandwidth_comparison()
        ratios = [
            row["cfm_words_per_cycle"]
            / max(1e-12, row["conventional_words_per_cycle"])
            for row in rows
        ]
        assert ratios == sorted(ratios)
        assert ratios[-1] > 2.0  # >2x delivered bandwidth at r = 0.06

"""Tests for network-controller event priorities (§5.4.1, Table 5.4)."""

import pytest

from repro.hierarchy.controller import ControllerEvent, EventType, NetworkController


class TestPriorities:
    def test_table_5_4_order(self):
        """write-back > invalidation-from-above > read-invalidate > read."""
        nc = NetworkController(0)
        nc.enqueue(EventType.READ, 1)
        nc.enqueue(EventType.READ_INVALIDATE, 2)
        nc.enqueue(EventType.WRITE_BACK, 3)
        nc.enqueue(EventType.INVALIDATION_FROM_ABOVE, 4)
        order = [ev.event_type for ev in nc.drain()]
        assert order == [
            EventType.WRITE_BACK,
            EventType.INVALIDATION_FROM_ABOVE,
            EventType.READ_INVALIDATE,
            EventType.READ,
        ]

    def test_fifo_within_priority(self):
        nc = NetworkController(0)
        nc.enqueue(EventType.READ, 10, requester=1)
        nc.enqueue(EventType.READ, 11, requester=2)
        served = nc.drain()
        assert [ev.offset for ev in served] == [10, 11]

    def test_late_writeback_preempts_queued_reads(self):
        nc = NetworkController(0)
        for i in range(3):
            nc.enqueue(EventType.READ, i)
        nc.enqueue(EventType.WRITE_BACK, 99)
        assert nc.pop().event_type is EventType.WRITE_BACK

    def test_pop_empty_returns_none(self):
        assert NetworkController(0).pop() is None

    def test_len_tracks_queue(self):
        nc = NetworkController(0)
        nc.enqueue(EventType.READ, 0)
        nc.enqueue(EventType.READ, 1)
        assert len(nc) == 2
        nc.pop()
        assert len(nc) == 1


class TestServiceSlots:
    def test_serve_round_respects_capacity(self):
        """§5.4.3: more AT-space partitions → more events per round."""
        nc1 = NetworkController(0, service_slots=1)
        nc2 = NetworkController(0, service_slots=2)
        for nc in (nc1, nc2):
            for i in range(4):
                nc.enqueue(EventType.READ, i)
        assert len(nc1.serve_round()) == 1
        assert len(nc2.serve_round()) == 2

    def test_invalid_service_slots(self):
        with pytest.raises(ValueError):
            NetworkController(0, service_slots=0)

    def test_served_log(self):
        nc = NetworkController(0)
        nc.enqueue(EventType.READ, 5)
        nc.drain()
        assert [ev.offset for ev in nc.served] == [5]

"""Tests for the Linda tuple-space baseline (§6.1.3)."""

import pytest

from repro.binding.linda import ANY, Eval, In, Out, Rd, TupleSpace, matches
from repro.sim.procs import Delay, SchedulerDeadlock


class TestMatching:
    def test_literal_match(self):
        assert matches(("x", 5), ("x", 5))
        assert not matches(("x", 5), ("x", 6))

    def test_wildcard(self):
        assert matches(("x", ANY), ("x", 99))

    def test_type_pattern(self):
        assert matches(("x", int), ("x", 5))
        assert not matches(("x", int), ("x", "five"))

    def test_arity_must_match(self):
        assert not matches(("x",), ("x", 5))


class TestPrimitives:
    def test_out_then_in(self):
        ts = TupleSpace()
        got = []

        def producer():
            yield Out(("msg", 42))

        def consumer():
            t = yield In(("msg", ANY))
            got.append(t)

        ts.spawn(producer())
        ts.spawn(consumer())
        ts.run()
        assert got == [("msg", 42)]
        assert ts.space == []  # in removed the tuple

    def test_rd_leaves_tuple(self):
        ts = TupleSpace()
        got = []

        def producer():
            yield Out(("msg", 1))

        def reader():
            t = yield Rd(("msg", ANY))
            got.append(t)

        ts.spawn(producer())
        ts.spawn(reader())
        ts.run()
        assert got == [("msg", 1)]
        assert ts.space == [("msg", 1)]

    def test_in_blocks_until_out(self):
        ts = TupleSpace()
        log = []

        def consumer():
            t = yield In(("late", ANY))
            log.append(("got", ts.sched.cycle))

        def producer():
            yield Delay(5)
            yield Out(("late", 1))
            log.append(("put", ts.sched.cycle))

        ts.spawn(consumer())
        ts.spawn(producer())
        ts.run()
        events = dict(log)
        assert events["got"] >= events["put"]

    def test_eval_spawns_process(self):
        ts = TupleSpace()
        got = []

        def child():
            yield Out(("child-did", 1))

        def parent():
            yield Eval(lambda: child())
            t = yield In(("child-did", ANY))
            got.append(t)

        ts.spawn(parent())
        ts.run()
        assert got == [("child-did", 1)]

    def test_one_tuple_wakes_one_waiter(self):
        ts = TupleSpace()
        got = []

        def consumer(tag):
            def gen():
                t = yield In(("job", ANY))
                got.append((tag, t))

            return gen()

        def producer():
            yield Out(("job", 1))

        ts.spawn(consumer("a"))
        ts.spawn(consumer("b"))
        ts.spawn(producer())
        with pytest.raises(SchedulerDeadlock):
            ts.run()  # b stays blocked forever: only one tuple existed
        assert len(got) == 1

    def test_match_probe_accounting(self):
        """§6.1.3's overhead: probes grow with tuple-space size."""
        ts = TupleSpace()

        def producer():
            for i in range(20):
                yield Out(("item", i))

        def consumer():
            t = yield In(("item", 19))  # worst case: last tuple
            return t

        ts.spawn(producer())
        ts.spawn(consumer())
        ts.run()
        assert ts.match_probes >= 20

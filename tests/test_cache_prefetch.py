"""Tests for software-controlled prefetching (§3.1.4)."""

import pytest

from repro.cache.prefetch import PrefetchingClient, run_stream


class TestPrefetch:
    def test_no_prefetch_all_misses(self):
        stats = run_stream(length=16, compute_gap=12, distance=0)
        assert stats.prefetches_issued == 0
        assert stats.hit_rate == 0.0
        assert stats.mean_latency >= 4  # every demand pays the block time

    def test_prefetch_turns_misses_into_hits(self):
        stats = run_stream(length=16, compute_gap=12, distance=1)
        assert stats.prefetches_issued > 0
        assert stats.hit_rate > 0.8  # all but the first access hit

    def test_prefetch_reduces_mean_latency(self):
        base = run_stream(length=24, compute_gap=12, distance=0)
        pref = run_stream(length=24, compute_gap=12, distance=1)
        assert pref.mean_latency < 0.6 * base.mean_latency

    def test_short_gap_limits_the_benefit(self):
        """With no compute gap the prefetch cannot finish in time."""
        tight = run_stream(length=16, compute_gap=0, distance=1)
        roomy = run_stream(length=16, compute_gap=12, distance=1)
        assert tight.hit_rate <= roomy.hit_rate

    def test_prefetch_skips_cached_blocks(self):
        # Revisiting the same block: prefetcher must not re-issue.
        from repro.cache.protocol import CacheSystem

        sys_ = CacheSystem(4)
        client = PrefetchingClient(sys_, 0, [1, 2, 1, 2], 8, 1)
        while not client.done:
            client.step()
            sys_.tick()
        assert client.stats.prefetches_issued <= 2

    def test_invalid_params(self):
        from repro.cache.protocol import CacheSystem

        with pytest.raises(ValueError):
            PrefetchingClient(CacheSystem(4), 0, [1], compute_gap=-1)

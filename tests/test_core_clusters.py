"""Tests for multi-cluster free-slot remote access (§3.3, Fig 3.12)."""

import pytest

from repro.core.block import Block
from repro.core.cfm import AccessKind
from repro.core.clusters import ClusterSystem, ConflictFreeCluster, RemoteRequest
from repro.core.config import CFMConfig


def two_clusters(link_latency=4):
    """Fig 3.12: two clusters, 3 processors + 4 banks each (1 free slot)."""
    cfgs = [CFMConfig(n_procs=4, bank_cycle=1) for _ in range(2)]
    return ClusterSystem(cfgs, local_procs=[3, 3], link_latency=link_latency)


class TestClusterStructure:
    def test_free_partitions(self):
        sys_ = two_clusters()
        assert sys_.clusters[0].n_free == 1
        assert sys_.clusters[1].n_free == 1

    def test_too_many_local_procs_rejected(self):
        cfg = CFMConfig(n_procs=4)
        with pytest.raises(ValueError):
            ConflictFreeCluster(0, cfg, 5)

    def test_local_access_restricted_to_local_procs(self):
        sys_ = two_clusters()
        with pytest.raises(ValueError):
            sys_.local_access(0, 3, AccessKind.READ, 0)  # partition 3 is free


class TestRemoteAccess:
    def test_remote_read_completes_with_link_latency(self):
        sys_ = two_clusters(link_latency=4)
        sys_.clusters[1].memory.poke_block(7, Block.of_values([9] * 4))
        req = sys_.remote_access(0, 0, 1, AccessKind.READ, 7)
        sys_.run_until_done(1)
        assert req.result is not None
        assert req.result.values == [9] * 4
        # "a slower regular memory access": ≥ 2 link trips + β
        assert req.latency >= 2 * 4 + 4

    def test_remote_write_lands_in_destination(self):
        sys_ = two_clusters()
        req = sys_.remote_access(
            1, 0, 0, AccessKind.WRITE, 3, data=Block.of_values([5] * 4)
        )
        sys_.run_until_done(1)
        assert sys_.clusters[0].memory.peek_block(3).values == [5] * 4

    def test_remote_service_does_not_disturb_local_accesses(self):
        """§3.3: the free-slot service adds no contention at the target."""
        sys_ = two_clusters()
        local = sys_.local_access(1, 0, AccessKind.READ, 0)
        sys_.remote_access(0, 0, 1, AccessKind.READ, 0)
        sys_.run_until_done(1)
        assert local.latency == 4  # the local access still takes exactly β

    def test_remote_to_same_cluster_rejected(self):
        sys_ = two_clusters()
        with pytest.raises(ValueError):
            sys_.remote_access(0, 0, 0, AccessKind.READ, 0)

    def test_requests_queue_when_free_slots_exhausted(self):
        sys_ = two_clusters()
        reqs = [
            sys_.remote_access(0, p, 1, AccessKind.READ, p) for p in range(3)
        ]
        sys_.run_until_done(3)
        lats = sorted(r.latency for r in reqs)
        assert lats[0] < lats[-1]  # serialized through the single free slot
        assert sys_.clusters[1].remote_served == 3

    def test_on_finish_callback(self):
        sys_ = two_clusters()
        done = []
        sys_.remote_access(
            0, 0, 1, AccessKind.READ, 0, on_finish=lambda r: done.append(r.req_id)
        )
        sys_.run_until_done(1)
        assert done == [0]

    def test_link_contention_is_tracked(self):
        sys_ = two_clusters()
        for p in range(3):
            sys_.remote_access(0, p, 1, AccessKind.READ, p)
        sys_.run_until_done(3)
        # Three requests entered a bandwidth-1 link in one slot.
        assert sys_.link_busy_slots > 0


class TestValidation:
    def test_bad_link_params_rejected(self):
        cfgs = [CFMConfig(n_procs=4), CFMConfig(n_procs=4)]
        with pytest.raises(ValueError):
            ClusterSystem(cfgs, [3, 3], link_latency=0)
        with pytest.raises(ValueError):
            ClusterSystem(cfgs, [3, 3], link_bandwidth=0)
        with pytest.raises(ValueError):
            ClusterSystem(cfgs, [3])

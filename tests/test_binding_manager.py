"""Tests for the shared-memory binding runtime (§6.2, Fig 6.11)."""

import pytest

from repro.binding.manager import (
    Bind,
    BindingRuntime,
    DeadlockDetected,
    SetPermission,
    Unbind,
)
from repro.binding.region import AccessType, Region
from repro.sim.procs import Delay


def simple_user(rt, log, name, region, access=AccessType.RW, hold=3):
    def gen():
        d = yield Bind(region, access)
        log.append((name, "bind", rt.sched.cycle))
        yield Delay(hold)
        yield Unbind(d)
        log.append((name, "unbind", rt.sched.cycle))

    return gen()


class TestDataBinding:
    def test_conflicting_binds_serialize(self):
        rt = BindingRuntime()
        log = []
        rt.spawn(simple_user(rt, log, "a", Region("x")[0:10]), "a")
        rt.spawn(simple_user(rt, log, "b", Region("x")[5:15]), "b")
        rt.run()
        events = {(n, e): c for n, e, c in log}
        assert events[("b", "bind")] >= events[("a", "unbind")]

    def test_disjoint_binds_parallel(self):
        rt = BindingRuntime()
        log = []
        rt.spawn(simple_user(rt, log, "a", Region("x")[0:5]), "a")
        rt.spawn(simple_user(rt, log, "b", Region("x")[5:10]), "b")
        rt.run()
        events = {(n, e): c for n, e, c in log}
        assert events[("b", "bind")] < events[("a", "unbind")]

    def test_multiple_readers_parallel(self):
        rt = BindingRuntime()
        log = []
        for name in ("r1", "r2", "r3"):
            rt.spawn(
                simple_user(rt, log, name, Region("x")[0:10], AccessType.RO), name
            )
        rt.run()
        binds = [c for n, e, c in log if e == "bind"]
        assert max(binds) - min(binds) <= 1  # all granted ~simultaneously

    def test_writer_excludes_readers(self):
        rt = BindingRuntime()
        log = []
        rt.spawn(simple_user(rt, log, "w", Region("x")[0:10], AccessType.RW), "w")
        rt.spawn(simple_user(rt, log, "r", Region("x")[0:10], AccessType.RO), "r")
        rt.run()
        events = {(n, e): c for n, e, c in log}
        assert events[("r", "bind")] >= events[("w", "unbind")]

    def test_nonblocking_bind_returns_none_on_conflict(self):
        rt = BindingRuntime()
        results = []

        def holder():
            d = yield Bind(Region("x")[0:10], AccessType.RW)
            yield Delay(5)
            yield Unbind(d)

        def prober():
            yield Delay(1)
            got = yield Bind(Region("x")[0:10], AccessType.RW, blocking=False)
            results.append(got)

        rt.spawn(holder())
        rt.spawn(prober())
        rt.run()
        assert results == [None]
        assert rt.stats_denials == 1

    def test_nonblocking_bind_succeeds_when_free(self):
        rt = BindingRuntime()
        results = []

        def prober():
            got = yield Bind(Region("x")[0:10], AccessType.RW, blocking=False)
            results.append(got)
            yield Unbind(got)

        rt.spawn(prober())
        rt.run()
        assert results[0] is not None

    def test_fifo_queue_on_unbind(self):
        rt = BindingRuntime()
        order = []

        def user(name, delay):
            def gen():
                yield Delay(delay)
                d = yield Bind(Region("x")[0:10], AccessType.RW)
                order.append(name)
                yield Delay(2)
                yield Unbind(d)

            return gen()

        rt.spawn(user("first", 0))
        rt.spawn(user("second", 1))
        rt.spawn(user("third", 2))
        rt.run()
        assert order == ["first", "second", "third"]

    def test_own_binds_never_self_conflict(self):
        rt = BindingRuntime()
        done = []

        def nester():
            d1 = yield Bind(Region("x")[0:10], AccessType.RW)
            d2 = yield Bind(Region("x")[0:5], AccessType.RW)
            done.append(True)
            yield Unbind(d2)
            yield Unbind(d1)

        rt.spawn(nester())
        rt.run()
        assert done == [True]

    def test_atomic_multi_region_via_strides(self):
        """The dining-philosophers trick: one bind covers several sticks."""
        rt = BindingRuntime()
        log = []
        # {0, 4} in one bind vs {4} in another: they conflict.
        rt.spawn(simple_user(rt, log, "a", Region("s")[0:5:4]), "a")
        rt.spawn(simple_user(rt, log, "b", Region("s")[4:5]), "b")
        rt.run()
        events = {(n, e): c for n, e, c in log}
        assert events[("b", "bind")] >= events[("a", "unbind")]


class TestUnbindValidation:
    def test_double_unbind_rejected(self):
        rt = BindingRuntime()

        def bad():
            d = yield Bind(Region("x")[0:1], AccessType.RW)
            yield Unbind(d)
            yield Unbind(d)

        rt.spawn(bad())
        with pytest.raises(ValueError):
            rt.run()

    def test_foreign_unbind_rejected(self):
        rt = BindingRuntime()
        shared = {}

        def owner():
            shared["d"] = yield Bind(Region("x")[0:1], AccessType.RW)
            yield Delay(10)
            yield Unbind(shared["d"])

        def thief():
            yield Delay(2)
            yield Unbind(shared["d"])

        rt.spawn(owner())
        rt.spawn(thief())
        with pytest.raises(ValueError):
            rt.run()


class TestDeadlockDetection:
    def test_two_process_cycle_detected(self):
        rt = BindingRuntime()

        def p(first, second):
            def gen():
                d1 = yield Bind(Region(first)[0:1], AccessType.RW)
                yield Delay(3)
                d2 = yield Bind(Region(second)[0:1], AccessType.RW)
                yield Unbind(d2)
                yield Unbind(d1)

            return gen()

        rt.spawn(p("x", "y"))
        rt.spawn(p("y", "x"))
        with pytest.raises(DeadlockDetected) as exc:
            rt.run()
        assert set(exc.value.cycle) == {0, 1}

    def test_detection_can_be_disabled(self):
        from repro.sim.procs import SchedulerDeadlock

        rt = BindingRuntime(detect_deadlock=False)

        def p(first, second):
            def gen():
                d1 = yield Bind(Region(first)[0:1], AccessType.RW)
                yield Delay(3)
                d2 = yield Bind(Region(second)[0:1], AccessType.RW)
                yield Unbind(d2)
                yield Unbind(d1)

            return gen()

        rt.spawn(p("x", "y"))
        rt.spawn(p("y", "x"))
        with pytest.raises(SchedulerDeadlock):
            rt.run()

    def test_no_false_positive_on_chain(self):
        rt = BindingRuntime()
        log = []
        rt.spawn(simple_user(rt, log, "a", Region("x")[0:10], hold=2), "a")
        rt.spawn(simple_user(rt, log, "b", Region("x")[0:10], hold=2), "b")
        rt.spawn(simple_user(rt, log, "c", Region("x")[0:10], hold=2), "c")
        rt.run()  # a chain is not a cycle
        assert len([1 for _, e, _ in log if e == "unbind"]) == 3


class TestStats:
    def test_counters(self):
        rt = BindingRuntime()
        log = []
        rt.spawn(simple_user(rt, log, "a", Region("x")[0:10]), "a")
        rt.spawn(simple_user(rt, log, "b", Region("x")[0:10]), "b")
        rt.run()
        assert rt.stats_binds == 2
        assert rt.stats_blocks == 1

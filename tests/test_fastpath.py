"""Differential tests for the fast-path layer (:mod:`repro.fastpath`).

Every acceleration must be *result-identical* to its slot-by-slot
reference: same completion streams, same memory contents, same metrics
snapshots, same probe event streams, same bench documents.  These tests
run the fast and reference paths side by side and compare the full
observable state, across the Table 3.3 machine shapes.
"""

from __future__ import annotations

import pytest

from repro.core.block import Block
from repro.core.cfm import (
    AccessController,
    AccessKind,
    AccessState,
    CFMemory,
    ControlAction,
)
from repro.core.config import CFMConfig
from repro.fastpath.tables import (
    assert_conflict_free,
    bank_orders,
    shift_permutations,
    slot_bank_table,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.probe import RecordingProbe
from repro.sim.engine import Engine, SlotClock

SHAPES = [(4, 1), (8, 2), (16, 4), (32, 8)]


# --------------------------------------------------------------------------
# Tables


class TestTables:
    @pytest.mark.parametrize("n_procs,bank_cycle", SHAPES)
    def test_slot_bank_table_matches_config_formula(self, n_procs, bank_cycle):
        cfg = CFMConfig(n_procs=n_procs, bank_cycle=bank_cycle)
        table = slot_bank_table(cfg.n_banks, bank_cycle)
        for slot in range(3 * cfg.n_banks):
            for proc in range(n_procs):
                assert table[slot % cfg.n_banks][proc] == cfg.bank_for(proc, slot)

    @pytest.mark.parametrize("n_procs,bank_cycle", SHAPES)
    def test_rows_are_injective(self, n_procs, bank_cycle):
        n_banks = n_procs * bank_cycle
        assert_conflict_free(n_banks, bank_cycle)
        for row in slot_bank_table(n_banks, bank_cycle):
            assert len(set(row)) == len(row)

    def test_tables_are_shared_per_shape(self):
        assert slot_bank_table(8, 2) is slot_bank_table(8, 2)
        assert bank_orders(8) is bank_orders(8)
        assert shift_permutations(8) is shift_permutations(8)

    def test_bank_orders_wrap(self):
        orders = bank_orders(4)
        assert orders[0] == (0, 1, 2, 3)
        assert orders[3] == (3, 0, 1, 2)

    def test_shift_permutations(self):
        perms = shift_permutations(8)
        for t in range(8):
            for i in range(8):
                assert perms[t][i] == (t + i) % 8

    def test_invalid_shapes_raise(self):
        with pytest.raises(ValueError):
            slot_bank_table(0, 1)
        with pytest.raises(ValueError):
            slot_bank_table(8, 3)  # 8 banks don't divide into cycle-3 slots


# --------------------------------------------------------------------------
# CFMemory: run_batch ≡ run


def _full_load_workload(mem: CFMemory, log, write_every=0):
    """Reissue-on-completion workload: every proc always has an access.

    ``write_every > 0`` makes every k-th reissue of a processor a write —
    to a processor-private offset, so batching stays hazard-free."""
    counts = [0] * mem.cfg.n_procs

    def reissue(acc):
        log.append((acc.access_id, acc.proc, acc.state.value, mem.slot,
                    acc.complete_slot))
        p = acc.proc
        counts[p] += 1
        if write_every and counts[p] % write_every == 0:
            data = Block.of_values(
                [counts[p] * 100 + p] * mem.cfg.n_banks
            )
            mem.issue(p, AccessKind.WRITE, offset=p, data=data,
                      version=f"P{p}.{counts[p]}", on_finish=reissue)
        else:
            mem.issue(p, AccessKind.READ, offset=p, on_finish=reissue)

    for p in range(mem.cfg.n_procs):
        mem.issue(p, AccessKind.READ, offset=p, on_finish=reissue)


def _state_fingerprint(mem: CFMemory):
    return (
        mem.slot,
        [sorted(bank.items()) for bank in mem.banks],
        [(a.access_id, a.proc, a.words_done) for a in mem.active],
        len(mem.completed),
        len(mem.aborted),
    )


class TestCFMBatchEquivalence:
    @pytest.mark.parametrize("n_procs,bank_cycle", SHAPES)
    def test_full_load_reads(self, n_procs, bank_cycle):
        self._compare(n_procs, bank_cycle, write_every=0)

    @pytest.mark.parametrize("n_procs,bank_cycle", SHAPES)
    def test_mixed_reads_and_writes(self, n_procs, bank_cycle):
        self._compare(n_procs, bank_cycle, write_every=3)

    def _compare(self, n_procs, bank_cycle, write_every, slots=400):
        log_ref, log_fast = [], []
        ref = CFMemory(CFMConfig(n_procs=n_procs, bank_cycle=bank_cycle))
        fast = CFMemory(CFMConfig(n_procs=n_procs, bank_cycle=bank_cycle))
        _full_load_workload(ref, log_ref, write_every)
        _full_load_workload(fast, log_fast, write_every)
        ref.run(slots)
        fast.run_batch(slots)
        assert log_ref == log_fast
        assert _state_fingerprint(ref) == _state_fingerprint(fast)
        for a, b in zip(ref.completed, fast.completed):
            if a.kind.is_read:
                assert a.result == b.result
            assert (a.issue_slot, a.complete_slot, a.latency) == (
                b.issue_slot, b.complete_slot, b.latency)

    def test_idle_slot_skip_lands_on_exact_slot(self):
        mem = CFMemory(CFMConfig(n_procs=8, bank_cycle=2))
        mem.run_batch(1234)
        assert mem.slot == 1234
        assert not mem.completed

    def test_staggered_issue_from_callbacks(self):
        # Completions re-issue at their exact slot-accurate times, so the
        # second generation starts mid-batch on both paths.
        for cls_slots in (37, 100, 333):
            log_ref, log_fast = [], []
            ref = CFMemory(CFMConfig(n_procs=4, bank_cycle=1))
            fast = CFMemory(CFMConfig(n_procs=4, bank_cycle=1))
            _full_load_workload(ref, log_ref)
            _full_load_workload(fast, log_fast)
            ref.run(cls_slots)
            fast.run_batch(cls_slots)
            assert log_ref == log_fast

    def test_same_offset_write_hazard_matches_fig_4_1(self):
        # Two simultaneous writes to one block interleave through the banks
        # (the Fig 4.1 corruption); the batch path must fall back and
        # reproduce the identical word-by-word outcome.
        def run(runner):
            mem = CFMemory(CFMConfig(n_procs=4))
            mem.issue(0, AccessKind.WRITE, 0,
                      data=Block.of_values([1, 2, 3, 4]), version="P0")
            mem.issue(1, AccessKind.WRITE, 0,
                      data=Block.of_values([10, 20, 30, 40]), version="P1")
            runner(mem)
            return [(w.value, w.version) for w in mem.peek_block(0).words]

        ref = run(lambda m: m.run(16))
        fast = run(lambda m: m.run_batch(16))
        assert ref == fast
        # The corruption itself: words from both writers.
        assert {v for _, v in ref} == {"P0", "P1"}

    def test_read_write_same_offset_hazard(self):
        def run(runner):
            mem = CFMemory(CFMConfig(n_procs=4))
            mem.poke_block(2, Block.of_values([7, 8, 9, 10]))
            r = mem.issue(0, AccessKind.READ, 2)
            mem.issue(1, AccessKind.WRITE, 2,
                      data=Block.of_values([70, 80, 90, 100]), version="W")
            runner(mem)
            return [(w.value, w.version) for w in r.result.words]

        assert run(lambda m: m.run(16)) == run(lambda m: m.run_batch(16))

    def test_probe_attached_falls_back_with_identical_stream(self):
        def run(runner, probed):
            probe = RecordingProbe() if probed else None
            log = []
            mem = CFMemory(CFMConfig(n_procs=8, bank_cycle=2), probe=probe)
            _full_load_workload(mem, log)
            runner(mem)
            events = [e.as_dict() for e in probe.events] if probed else None
            return log, events

        log_ref, ev_ref = run(lambda m: m.run(200), probed=True)
        log_fast, ev_fast = run(lambda m: m.run_batch(200), probed=True)
        assert ev_ref == ev_fast
        assert log_ref == log_fast
        # And with the probe off, the numbers still agree.
        log_off, _ = run(lambda m: m.run_batch(200), probed=False)
        assert log_off == log_ref

    def test_metrics_attached_snapshots_identical(self):
        def run(runner):
            metrics = MetricsRegistry()
            log = []
            mem = CFMemory(CFMConfig(n_procs=8, bank_cycle=2),
                           metrics=metrics)
            _full_load_workload(mem, log)
            runner(mem)
            return log, metrics.snapshot()

        log_ref, snap_ref = run(lambda m: m.run(200))
        log_fast, snap_fast = run(lambda m: m.run_batch(200))
        assert snap_ref == snap_fast
        assert log_ref == log_fast

    def test_custom_controller_falls_back(self):
        # A controller overriding any hook pins the reference path; the
        # batch runner must produce the controller-visited slot sequence.
        class CountingController(AccessController):
            def __init__(self):
                self.visits = []

            def on_bank(self, mem, access, bank, slot):
                self.visits.append((access.access_id, bank, slot))
                return ControlAction.PROCEED

        def run(runner):
            ctrl = CountingController()
            mem = CFMemory(CFMConfig(n_procs=4, bank_cycle=1),
                           controller=ctrl)
            mem.issue(0, AccessKind.READ, 0)
            mem.issue(2, AccessKind.READ, 1)
            runner(mem)
            return ctrl.visits

        assert run(lambda m: m.run(12)) == run(lambda m: m.run_batch(12))


# --------------------------------------------------------------------------
# SlotClock: advance_until ≡ advance


class _TickRecorder:
    """A subscriber with events at known slots + an honest hint."""

    def __init__(self, schedule):
        self.schedule = sorted(schedule)
        self.fired = []

    def tick(self, slot):
        if slot in self.schedule:
            self.fired.append(slot)

    def next_interesting(self, slot):
        for s in self.schedule:
            if s > slot:
                return s
        return None


class TestSlotClockAdvanceUntil:
    def _pair(self, schedules, period=None):
        clocks = []
        for _ in range(2):
            clk = SlotClock(period=period)
            recs = [_TickRecorder(s) for s in schedules]
            for r in recs:
                clk.subscribe(r.tick, next_interesting=r.next_interesting)
            clocks.append((clk, recs))
        return clocks

    def test_equivalent_fire_pattern(self):
        (ref, ref_recs), (fast, fast_recs) = self._pair(
            [[3, 7, 50], [7, 8, 120], []])
        ref.advance(200)
        fast.advance_until(200)
        assert fast.slot == ref.slot == 200
        for a, b in zip(ref_recs, fast_recs):
            assert a.fired == b.fired

    def test_hintless_subscriber_degrades_to_per_slot(self):
        clk = SlotClock()
        seen = []
        clk.subscribe(seen.append)  # no hint: every slot is interesting
        clk.advance_until(25)
        assert seen == list(range(1, 26))

    def test_probe_pins_per_slot_stream(self):
        def run(until_fn):
            clk = SlotClock(period=8)
            clk.probe = RecordingProbe()
            rec = _TickRecorder([5, 40])
            clk.subscribe(rec.tick, next_interesting=rec.next_interesting)
            until_fn(clk)
            return [e.as_dict() for e in clk.probe.events], rec.fired

        ev_ref, fired_ref = run(lambda c: c.advance(60))
        ev_fast, fired_fast = run(lambda c: c.advance_until(60))
        assert ev_ref == ev_fast  # every slot's tick event, phases included
        assert fired_ref == fired_fast

    def test_rewind_raises(self):
        clk = SlotClock()
        clk.advance(5)
        with pytest.raises(ValueError):
            clk.advance_until(3)

    def test_silent_leap_when_nothing_upcoming(self):
        clk = SlotClock()
        rec = _TickRecorder([])
        clk.subscribe(rec.tick, next_interesting=rec.next_interesting)
        clk.advance_until(10_000)
        assert clk.slot == 10_000 and rec.fired == []


# --------------------------------------------------------------------------
# Engine: O(1) pending, idempotent cancel, batch dispatch


class TestEngineFastPath:
    def test_pending_tracks_schedule_dispatch_cancel(self):
        eng = Engine()
        events = [eng.schedule(i, lambda: None) for i in range(10)]
        assert eng.pending() == 10
        events[3].cancel()
        events[3].cancel()  # idempotent: released exactly once
        assert eng.pending() == 9
        eng.run(until=4)
        assert eng.pending() == 5  # 0,1,2,4 dispatched; 3 cancelled
        eng.run()
        assert eng.pending() == 0

    def test_cancelled_event_never_fires(self):
        eng = Engine()
        out = []
        ev = eng.schedule(2, lambda: out.append("dead"))
        eng.schedule(2, lambda: out.append("live"))
        ev.cancel()
        eng.run()
        assert out == ["live"]

    def test_run_batch_equals_step_loop(self):
        def build(eng, log):
            def chain(depth):
                log.append((eng.now, depth))
                if depth < 5:
                    eng.schedule(3, lambda: chain(depth + 1))
            for i in range(4):
                eng.schedule(i, lambda i=i: chain(0))

        ref_eng, ref_log = Engine(), []
        build(ref_eng, ref_log)
        while ref_eng.step():
            pass
        fast_eng, fast_log = Engine(), []
        build(fast_eng, fast_log)
        n = fast_eng.run_batch()
        assert ref_log == fast_log
        assert n == len(fast_log)
        assert ref_eng.now == fast_eng.now

    def test_run_until_sets_now_even_when_drained(self):
        eng = Engine()
        eng.schedule(3, lambda: None)
        eng.run(until=100)
        assert eng.now == 100

    def test_max_events_caps_dispatch(self):
        eng = Engine()
        fired = []
        for i in range(6):
            eng.schedule(i, lambda i=i: fired.append(i))
        assert eng.run_batch(max_events=4) == 4
        assert fired == [0, 1, 2, 3]
        eng.run()
        assert fired == [0, 1, 2, 3, 4, 5]


# --------------------------------------------------------------------------
# Retry simulators: golden values (pre-fastpath captures)


class TestInterleavedGolden:
    """Pinned outputs captured from the pre-optimization scan loop — the
    idle-proc-skipping rewrite must preserve draws and arbitration."""

    def test_conventional_seed0(self):
        from repro.memory.interleaved import ConventionalMemorySimulator

        s = ConventionalMemorySimulator(8, 8, rate=0.04, beta=17, seed=0)
        r = s.run(3000)
        assert (r.completed, r.retries, r.conflicts) == (764, 1128, 1152)

    def test_conventional_seed3(self):
        from repro.memory.interleaved import ConventionalMemorySimulator

        s = ConventionalMemorySimulator(8, 8, rate=0.04, beta=17, seed=3)
        r = s.run(3000)
        assert (r.completed, r.retries, r.conflicts) == (789, 1134, 1162)

    @pytest.mark.parametrize("locality,expect", [
        (0.0, (1656, 369, 373, 4.449275)),
        (0.9, (1656, 94, 94, 4.113527)),
    ])
    def test_partial_locality(self, locality, expect):
        from repro.memory.interleaved import PartialCFMemorySimulator
        from repro.network.partial import PartialCFSystem

        sys_ = PartialCFSystem(n_procs=16, n_modules=4, bank_cycle=1)
        sim = PartialCFMemorySimulator(sys_, rate=0.05, locality=locality,
                                       seed=1)
        r = sim.run(2000)
        completed, retries, conflicts, mean = expect
        assert (r.completed, r.retries, r.conflicts) == (
            completed, retries, conflicts)
        assert r.latencies.mean() == pytest.approx(mean, abs=1e-6)


# --------------------------------------------------------------------------
# Parallel sweep: pooled ≡ serial


class TestParallelSweep:
    SPECS = [
        {"system": "cfm",
         "params": {"n_procs": 8, "bank_cycle": 2, "cycles": 300}},
        {"system": "interleaved",
         "params": {"n_procs": 8, "n_modules": 8, "rate": 0.04, "beta": 17,
                    "cycles": 1000, "seed": 7}},
        {"system": "partial",
         "params": {"n_procs": 16, "n_modules": 4, "bank_cycle": 1,
                    "rate": 0.05, "locality": 0.9, "cycles": 800,
                    "seed": 2}},
    ]

    def test_jobs_2_equals_jobs_1(self):
        from repro.fastpath.parallel import sweep

        serial = sweep(self.SPECS, jobs=1, name="t")
        pooled = sweep(self.SPECS, jobs=2, name="t")
        serial.pop("timing")
        pooled.pop("timing")
        assert serial == pooled

    def test_failed_spec_preserves_survivors_and_reports(self):
        """One bad spec costs its own report, not the sweep: survivors
        stay in ``runs`` (in spec order), the failure lands in the
        ``failures`` section as data — identically under a pool."""
        from repro.fastpath.parallel import sweep

        bad = {"system": "no_such_system", "params": {}}
        specs = [self.SPECS[0], bad, self.SPECS[1]]
        for jobs in (1, 2):
            doc = sweep(specs, jobs=jobs, name="t")
            assert [r["system"] for r in doc["runs"]] == [
                "cfm", "interleaved"]
            (failure,) = doc["failures"]
            assert failure["spec"] == bad
            assert "no_such_system" in failure["error"]
            assert len(doc["timing"]["runs"]) == 2  # no timing for failures

    def test_timing_section_is_separable(self):
        from repro.fastpath.parallel import sweep

        doc = sweep(self.SPECS[:1], jobs=1, name="t", timing=True)
        assert doc["timing"]["jobs"] == 1
        assert len(doc["timing"]["runs"]) == 1
        bare = sweep(self.SPECS[:1], jobs=1, name="t", timing=False)
        assert "timing" not in bare
        assert bare["runs"] == doc["runs"]

    def test_derive_seed_deterministic_and_distinct(self):
        from repro.fastpath.parallel import derive_seed

        a = derive_seed(0, "sweep", 0.02, 0)
        assert a == derive_seed(0, "sweep", 0.02, 0)
        assert a != derive_seed(0, "sweep", 0.02, 1)
        assert a != derive_seed(1, "sweep", 0.02, 0)

    def test_benchmark_specs_match_registry_output(self):
        from repro.obs.bench import BENCHMARKS, benchmark_specs, run_spec

        specs = benchmark_specs("quick")
        assert [run_spec(s) for s in specs] == BENCHMARKS["quick"](True)


class TestEngineLayerResolution:
    """The per-layer engine availability surface (stage 4 satellite):
    ``stacked`` is CFM-only, and mismatches fail with a typed ValueError
    naming the layers that DO support the engine."""

    def test_supported_layers_registry(self):
        from repro.fastpath.engine import (
            ENGINE_LAYERS,
            ENGINES,
            supported_layers,
        )

        assert supported_layers("reference") == ENGINE_LAYERS
        assert supported_layers("batch") == ENGINE_LAYERS
        assert supported_layers("vectorized") == ENGINE_LAYERS
        assert supported_layers("stacked") == ("cfm",)
        for name in ENGINES:
            assert set(supported_layers(name)) <= set(ENGINE_LAYERS)

    def test_engine_available_predicate(self):
        from repro.fastpath.engine import engine_available, vector_available

        assert engine_available("reference", "cache")
        assert engine_available("batch", "hierarchy")
        assert not engine_available("stacked", "cache")
        assert not engine_available("stacked", "hierarchy")
        # The numpy gate composes with the layer table.
        assert engine_available("stacked", "cfm") == vector_available()
        assert engine_available("vectorized", "cfm") == vector_available()
        # Unknown engines and unknown layers are simply unavailable.
        assert not engine_available("turbo", "cfm")
        assert not engine_available("stacked", "network")

    def test_resolve_engine_layer_mismatch_is_typed(self):
        from repro.fastpath.engine import resolve_engine, vector_available

        if not vector_available():
            pytest.skip("numpy required for the stacked engine")
        assert resolve_engine("stacked", layer="cfm") == "stacked"
        with pytest.raises(ValueError, match="supported layers: cfm"):
            resolve_engine("stacked", layer="cache")
        with pytest.raises(ValueError, match="supported layers: cfm"):
            resolve_engine("stacked", layer="hierarchy")

    def test_resolve_engine_custom_available_predicate(self):
        from repro.fastpath.engine import resolve_engine

        calls = []

        def deny(engine, layer):
            calls.append((engine, layer))
            return False

        with pytest.raises(ValueError, match="does not support layer"):
            resolve_engine("batch", layer="cfm", available=deny)
        assert calls == [("batch", "cfm")]
        assert resolve_engine(
            "batch", layer="cfm", available=lambda e, l: True) == "batch"

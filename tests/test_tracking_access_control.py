"""Tests for ATT access control: the Figs 4.3–4.5 scenarios (§4.1.2)."""

import pytest

from repro.core.block import Block
from repro.core.cfm import AccessKind, AccessState, CFMemory
from repro.core.config import CFMConfig
from repro.tracking.access_control import AddressTrackingController, PriorityMode
from repro.tracking.atomic import (
    CFMDriver,
    OpStatus,
    ReadOperation,
    WriteOperation,
)


def make_driver(n=8, mode=PriorityMode.LATEST_WINS):
    cfg = CFMConfig(n_procs=n, bank_cycle=1)
    ctl = AddressTrackingController(cfg.n_banks, mode)
    mem = CFMemory(cfg, controller=ctl)
    return CFMDriver(mem), ctl


class TestWriteWriteControl:
    def test_fig_4_3_later_write_wins(self):
        """Write a (proc 1, slot 0) is aborted by write b (proc 3, slot 1);
        b completes (§4.1.2, Fig 4.3)."""
        d, ctl = make_driver()
        wa = WriteOperation(d, 1, 0, [1] * 8, version="a").start()
        d.tick()
        wb = WriteOperation(d, 3, 0, [2] * 8, version="b").start()
        d.run_until(lambda: wa.done and wb.done)
        assert wa.status is OpStatus.ABORTED
        assert wb.status is OpStatus.DONE
        assert ctl.aborts == 1
        blk = d.mem.peek_block(0)
        assert blk.is_single_version()
        assert blk.versions[0] == "b"

    def test_fig_4_4_simultaneous_writes_one_survives(self):
        """Simultaneous same-address writes: exactly one completes, chosen
        by who reaches bank 0 first (Fig 4.4)."""
        d, _ = make_driver()
        wc = WriteOperation(d, 1, 0, [1] * 8, version="c").start()
        wd = WriteOperation(d, 5, 0, [2] * 8, version="d").start()
        d.run_until(lambda: wc.done and wd.done)
        statuses = sorted([wc.status, wd.status], key=lambda s: s.value)
        assert statuses == [OpStatus.ABORTED, OpStatus.DONE]
        # Proc 5 starts at bank 5 and reaches bank 0 after 3 slots; proc 1
        # starts at bank 1 and needs 7 slots — d has priority (Fig 4.4).
        assert wd.status is OpStatus.DONE
        assert d.mem.peek_block(0).is_single_version()

    @pytest.mark.parametrize("p1,p2,stagger", [
        (0, 4, 0), (2, 6, 2), (1, 2, 5), (7, 3, 7), (0, 1, 3),
    ])
    def test_exactly_one_competing_write_completes(self, p1, p2, stagger):
        d, _ = make_driver()
        w1 = WriteOperation(d, p1, 0, [1] * 8, version="x").start()
        d.run(stagger)
        w2 = WriteOperation(d, p2, 0, [2] * 8, version="y").start()
        d.run_until(lambda: w1.done and w2.done)
        done = [w for w in (w1, w2) if w.status is OpStatus.DONE]
        blk = d.mem.peek_block(0)
        # At least one write completes; the block is never mixed; the final
        # data belongs to a write that completed.  When the issues are
        # staggered the later write wins (§4.1 priority); simultaneous
        # issues are arbitrated by who reaches bank 0 first (Fig 4.4).
        assert len(done) >= 1
        assert blk.is_single_version()
        assert blk.versions[0] in {w.version for w in done}
        if stagger > 0:
            assert w2.status is OpStatus.DONE
            assert blk.versions[0] == "y"

    def test_disjoint_offsets_never_interfere(self):
        d, ctl = make_driver()
        w1 = WriteOperation(d, 0, 1, [1] * 8, version="x").start()
        w2 = WriteOperation(d, 4, 2, [2] * 8, version="y").start()
        d.run_until(lambda: w1.done and w2.done)
        assert w1.status is OpStatus.DONE and w2.status is OpStatus.DONE
        assert ctl.aborts == 0


class TestReadControl:
    def test_fig_4_5_read_restarts_on_write(self):
        """A read overlapping a same-address write restarts from the bank
        where it detects the write, and returns a single version."""
        d, ctl = make_driver()
        d.mem.poke_block(0, Block.of_values([0] * 8, "old"))
        w = WriteOperation(d, 2, 0, [5] * 8, version="new").start()
        d.tick()
        r = ReadOperation(d, 6, 0).start()
        d.run_until(lambda: w.done and r.done)
        assert ctl.restarts >= 1
        assert r.result is not None
        assert r.result.is_single_version()
        assert set(r.result.versions) == {"new"}

    def test_read_before_write_returns_old_version(self):
        """A read that fully precedes the write sees the old block."""
        d, _ = make_driver()
        d.mem.poke_block(0, Block.of_values([7] * 8, "old"))
        r = ReadOperation(d, 0, 0).start()
        d.run_until(lambda: r.done)
        w = WriteOperation(d, 1, 0, [9] * 8, version="new").start()
        d.run_until(lambda: w.done)
        assert set(r.result.versions) == {"old"}

    @pytest.mark.parametrize("stagger", range(8))
    def test_read_always_single_version(self, stagger):
        """Property across every interleaving phase: no mixed blocks."""
        d, _ = make_driver()
        d.mem.poke_block(0, Block.of_values([0] * 8, "old"))
        w = WriteOperation(d, 3, 0, [1] * 8, version="new").start()
        d.run(stagger)
        r = ReadOperation(d, 5, 0).start()
        d.run_until(lambda: w.done and r.done)
        assert r.result.is_single_version()

    def test_reads_never_interfere_with_each_other(self):
        d, ctl = make_driver()
        rs = [ReadOperation(d, p, 0).start() for p in range(8)]
        d.run_until(lambda: all(r.done for r in rs))
        assert all(r.status is OpStatus.DONE for r in rs)
        assert ctl.restarts == 0
        assert all(r.total_latency == 8 for r in rs)

    def test_no_overhead_when_no_conflicts(self):
        """§4.1.2: the mechanism adds no latency to unconflicted accesses."""
        d, _ = make_driver()
        w = WriteOperation(d, 0, 3, [1] * 8, version="v").start()
        d.run_until(lambda: w.done)
        assert w.total_latency == 8  # exactly β

"""Tests for per-processor cache directories (§5.2.1)."""

import pytest

from repro.cache.directory import CacheDirectory
from repro.cache.state import CacheLineState as S
from repro.core.block import Block


class TestDirectory:
    def test_fill_and_lookup(self):
        d = CacheDirectory(0, n_lines=8)
        d.fill(5, Block.of_values([1] * 4), S.VALID)
        line = d.lookup(5)
        assert line is not None
        assert line.state is S.VALID
        assert line.data.values == [1] * 4

    def test_miss_returns_none(self):
        d = CacheDirectory(0, n_lines=8)
        assert d.lookup(5) is None
        assert d.state_of(5) is S.INVALID

    def test_direct_mapped_eviction(self):
        d = CacheDirectory(0, n_lines=8)
        d.fill(5, Block.of_values([1] * 4), S.VALID)
        d.fill(13, Block.of_values([2] * 4), S.VALID)  # same line (13 % 8)
        assert d.lookup(5) is None
        assert d.lookup(13) is not None

    def test_tag_disambiguates_same_line(self):
        d = CacheDirectory(0, n_lines=8)
        d.fill(5, Block.of_values([1] * 4), S.VALID)
        assert d.lookup(13) is None  # same index, different tag

    def test_invalidate(self):
        d = CacheDirectory(0, n_lines=8)
        d.fill(5, Block.of_values([1] * 4), S.VALID)
        assert d.invalidate(5) is True
        assert d.lookup(5) is None
        assert d.invalidations_received == 1
        assert d.invalidate(5) is False  # already gone

    def test_dirty_offsets(self):
        d = CacheDirectory(0, n_lines=8)
        d.fill(1, Block.of_values([1] * 4), S.DIRTY)
        d.fill(2, Block.of_values([2] * 4), S.VALID)
        assert d.dirty_offsets() == [1]

    def test_fill_clears_wb_disabled(self):
        d = CacheDirectory(0, n_lines=8)
        line = d.fill(1, Block.of_values([1] * 4), S.DIRTY)
        line.wb_disabled = True
        d.fill(1, Block.of_values([2] * 4), S.VALID)
        assert d.lookup(1).wb_disabled is False

    def test_invalid_line_count(self):
        with pytest.raises(ValueError):
            CacheDirectory(0, n_lines=0)

"""Tests for seeded, splittable randomness."""

import numpy as np

from repro.sim.rng import derive_rng, make_rng


def test_same_seed_same_stream():
    a = make_rng(7).random(10)
    b = make_rng(7).random(10)
    assert np.array_equal(a, b)


def test_generator_passthrough():
    g = np.random.default_rng(1)
    assert make_rng(g) is g


def test_derived_streams_reproducible():
    a = derive_rng(42, "proc", 3).random(5)
    b = derive_rng(42, "proc", 3).random(5)
    assert np.array_equal(a, b)


def test_derived_streams_independent_per_key():
    a = derive_rng(42, "proc", 3).random(5)
    b = derive_rng(42, "proc", 4).random(5)
    assert not np.array_equal(a, b)


def test_derived_streams_differ_per_seed():
    a = derive_rng(1, "x").random(5)
    b = derive_rng(2, "x").random(5)
    assert not np.array_equal(a, b)


def test_derive_from_generator_advances():
    g = np.random.default_rng(0)
    a = derive_rng(g, "x").random(3)
    b = derive_rng(g, "x").random(3)
    assert not np.array_equal(a, b)

"""Tests for the passive-wakeup lock baseline (§4.2.2)."""

import pytest

from repro.tracking.passive import PassiveWakeupLockSystem


class TestPassiveWakeup:
    def test_everyone_acquires_once(self):
        sys_ = PassiveWakeupLockSystem(6, cs_cycles=5)
        accs = sys_.run()
        assert len(accs) == 6

    def test_mutual_exclusion(self):
        sys_ = PassiveWakeupLockSystem(5, cs_cycles=8)
        accs = sorted(sys_.run(), key=lambda a: a.acquired)
        for a, b in zip(accs, accs[1:]):
            assert b.acquired >= a.released

    def test_fifo_handoff(self):
        sys_ = PassiveWakeupLockSystem(4, cs_cycles=3)
        accs = sys_.run()
        order = [a.proc for a in sorted(accs, key=lambda a: a.acquired)]
        assert order == sorted(order)

    def test_transfer_gap_is_wakeup_plus_switch(self):
        sys_ = PassiveWakeupLockSystem(
            4, cs_cycles=5, wakeup_latency=50, context_switch=20
        )
        sys_.run()
        assert sys_.mean_transfer_gap() == pytest.approx(70, abs=2)

    def test_busy_wait_on_cfm_beats_passive_wakeup(self):
        """§4.2.2's conclusion: with contention-free busy-waiting the CFM's
        ~3β transfer beats the sleep queue's wakeup + context switch."""
        from repro.cache.locks import CacheLockSystem

        passive = PassiveWakeupLockSystem(
            4, cs_cycles=10, wakeup_latency=50, context_switch=20
        )
        passive.run()
        spin = CacheLockSystem(4, cs_cycles=10)
        accs = sorted(spin.run(), key=lambda a: a.acquired_slot)
        gaps = [b.acquired_slot - a.released_slot
                for a, b in zip(accs, accs[1:])]
        spin_gap = sum(gaps) / len(gaps)
        assert spin_gap < passive.mean_transfer_gap()

    def test_invalid_overheads(self):
        with pytest.raises(ValueError):
            PassiveWakeupLockSystem(4, wakeup_latency=-1)

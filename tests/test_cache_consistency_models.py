"""Tests for the four §2.2 consistency-model schedulers."""

import pytest

from repro.cache.consistency import (
    AccessClass as A,
    compare_consistency_models,
    completion_time,
    enforce_processor_order,
    enforce_release_order,
    enforce_sequential_order,
    enforce_weak_order,
)

LOAD, STORE, SYNC = A.ORDINARY_LOAD, A.ORDINARY_STORE, A.SYNC
ACQ, REL = A.ACQUIRE, A.RELEASE

CRITICAL_SECTION = [
    (ACQ, 10),
    (LOAD, 10), (LOAD, 10), (STORE, 10), (STORE, 10),
    (REL, 10),
    (LOAD, 10), (LOAD, 10),
]

MIXED = [(LOAD, 8), (STORE, 8), (LOAD, 8), (SYNC, 4), (STORE, 8), (LOAD, 8)]


class TestProcessorConsistency:
    def test_load_issues_before_store_performs(self):
        """§2.2.2's headline: a load may perform before earlier stores."""
        sched = enforce_processor_order([(STORE, 10), (LOAD, 10)])
        store, load = sched
        assert load[0] < store[1]  # load issued before the store performed

    def test_store_waits_for_everything(self):
        sched = enforce_processor_order([(LOAD, 10), (LOAD, 10), (STORE, 5)])
        assert sched[2][0] >= max(p for _i, p in sched[:2])

    def test_faster_than_sequential(self):
        prog = [(LOAD, 10)] * 5 + [(STORE, 5)]
        assert completion_time(enforce_processor_order(prog)) <= \
            completion_time(enforce_sequential_order(prog))


class TestReleaseConsistency:
    def test_post_release_ops_do_not_wait(self):
        """§2.2.4 advantage 1: ordinary accesses after a release proceed."""
        sched = enforce_release_order([(STORE, 10), (REL, 10), (LOAD, 10)])
        release, load = sched[1], sched[2]
        assert load[0] < release[1]

    def test_acquire_does_not_wait_for_ordinary(self):
        """§2.2.4 advantage 2: an acquire needn't wait for earlier
        ordinary accesses."""
        sched = enforce_release_order([(STORE, 10), (ACQ, 10)])
        store, acq = sched
        assert acq[0] < store[1]

    def test_ordinary_waits_for_acquire(self):
        sched = enforce_release_order([(ACQ, 10), (LOAD, 5)])
        assert sched[1][0] >= sched[0][1]

    def test_release_waits_for_ordinary(self):
        sched = enforce_release_order([(STORE, 10), (STORE, 10), (REL, 5)])
        assert sched[2][0] >= max(p for _i, p in sched[:2])

    def test_weak_sync_equals_acquire_plus_release(self):
        """Under release consistency, a SYNC behaves like the stricter of
        the two — never looser than weak consistency's sync."""
        sched = enforce_release_order(MIXED)
        weak = enforce_weak_order(MIXED)
        assert completion_time(sched) <= completion_time(weak)


class TestModelOrdering:
    @pytest.mark.parametrize("program", [CRITICAL_SECTION, MIXED,
                                         [(LOAD, 10)] * 8,
                                         [(STORE, 6)] * 6 + [(SYNC, 4)]])
    def test_relaxation_never_slows_down(self, program):
        """The §2.2 hierarchy: each relaxation is at least as fast."""
        t = compare_consistency_models(program)
        assert t["sequential"] >= t["processor"] >= t["weak"] >= t["release"]

    def test_critical_section_gains_are_real(self):
        t = compare_consistency_models(CRITICAL_SECTION)
        assert t["release"] < t["weak"] < t["sequential"]

    def test_empty_program(self):
        assert completion_time([]) == 0

    def test_invalid_durations(self):
        with pytest.raises(ValueError):
            enforce_processor_order([(LOAD, 0)])
        with pytest.raises(ValueError):
            enforce_release_order([(ACQ, -1)])

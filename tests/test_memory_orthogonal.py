"""Tests for the OMP orthogonal-memory baseline (§2.1.3)."""

import pytest

from repro.memory.orthogonal import (
    AccessMode,
    OMPConfig,
    OrthogonalMemory,
    bank_cost_comparison,
    cfm_alignment_stall,
)


class TestModes:
    def test_mode_alternates(self):
        mem = OrthogonalMemory(OMPConfig(n_procs=4, mode_cycles=4))
        assert mem.mode_at(0) is AccessMode.ROW
        assert mem.mode_at(3) is AccessMode.ROW
        assert mem.mode_at(4) is AccessMode.COLUMN
        assert mem.mode_at(8) is AccessMode.ROW

    def test_aligned_request_no_stall(self):
        mem = OrthogonalMemory(OMPConfig(4, 4))
        assert mem.stall(0, AccessMode.ROW) == 0
        assert mem.stall(4, AccessMode.COLUMN) == 0

    def test_wrong_phase_stalls_until_next_window(self):
        mem = OrthogonalMemory(OMPConfig(4, 4))
        # Column request at cycle 0 waits for the column window at 4.
        assert mem.stall(0, AccessMode.COLUMN) == 4
        # Row request at cycle 5 waits until cycle 8.
        assert mem.stall(5, AccessMode.ROW) == 3
        # Mid-row-window row request waits a whole period minus phase.
        assert mem.stall(1, AccessMode.ROW) == 7

    def test_mean_stall_near_analytic(self):
        """Uniform phases: mean stall ≈ (period − 1)/2."""
        cfg = OMPConfig(4, 4)
        mem = OrthogonalMemory(cfg)
        measured = mem.mean_stall(samples=20_000, seed=1)
        assert measured == pytest.approx((cfg.period - 1) / 2, abs=0.3)

    def test_cfm_has_zero_alignment_stall(self):
        """The §3.1.1 contrast: a CFM block access starts at any slot."""
        assert cfm_alignment_stall() == 0
        mem = OrthogonalMemory(OMPConfig(8, 8))
        assert mem.mean_stall(samples=5000) > 5  # OMP pays, CFM doesn't


class TestCosts:
    def test_bank_cost_n_squared_vs_cn(self):
        omp, cfm = bank_cost_comparison(64, bank_cycle=2)
        assert omp == 4096
        assert cfm == 128

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            OMPConfig(0, 4)
        with pytest.raises(ValueError):
            bank_cost_comparison(0)

"""Meta-test: every public item in the library is documented.

The deliverable standard: doc comments on every public module, class, and
function.  This test walks the whole ``repro`` package and fails on any
undocumented public name, so documentation debt cannot accumulate
silently.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _walk_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name == "repro.__main__":
            continue  # importing it runs the CLI
        yield importlib.import_module(info.name)


MODULES = list(_walk_modules())


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), (
        f"module {module.__name__} lacks a docstring"
    )


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_classes_and_functions_documented(module):
    """Every public class (enums included) and module-level function must
    carry a docstring; methods inherit their class's documented context."""
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-export; documented at its home
        if not (obj.__doc__ and obj.__doc__.strip()):
            undocumented.append(name)
    assert not undocumented, (
        f"{module.__name__}: undocumented public items: {undocumented}"
    )

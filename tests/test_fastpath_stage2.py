"""Stage-2 fastpath: batched protocol epochs must be bit-identical.

:meth:`CacheSystem.run_ops_batch` and
:meth:`SlotAccurateHierarchy.run_ops_batch` reuse the precomputed AT
tables to leap conflict-free spans, falling back to the per-slot
reference ``tick()`` whenever the classifier cannot prove a span clean.
Everything here is differential: the same workload runs once through the
reference and once through the batch path, and *every* observable —
op streams with issue/done slots, hit/retry/access counts, directory
states, bank contents with versions, controller counters, the final slot
— must match exactly.  The profiler rides along on some runs to pin that
attaching it never changes results, and that conflict-free workloads
never touch a ``fallback.*`` counter.
"""

import random

import pytest

from repro.cache.protocol import CacheSystem
from repro.cache.state import CacheLineState
from repro.core.block import Block
from repro.hierarchy.slot_accurate import SlotAccurateHierarchy
from repro.obs.hotpath import HotpathProfiler
from repro.obs.metrics import MetricsRegistry
from repro.obs.probe import RecordingProbe
from repro.sim.engine import SimulationTimeout

SHAPES = [(4, 1), (8, 2), (16, 4)]


# --------------------------------------------------------------------------
# Cache-layer workloads (plans are (proc, kind, offset, words) scripts)


def _plan_shared(n_procs, rounds, seed):
    """Loads + stores over a small shared set: hazard-rich."""
    rng = random.Random(seed)
    plan = []
    for _ in range(rounds):
        batch = []
        for p in range(n_procs):
            off = rng.randrange(4)
            if rng.random() < 0.4:
                batch.append((p, "store", off, {rng.randrange(n_procs): p + 1}))
            else:
                batch.append((p, "load", off, None))
        plan.append(batch)
    return plan


def _plan_private(n_procs, rounds, seed):
    """Proc-private offsets: conflict-free, the batch path's home turf."""
    rng = random.Random(seed)
    plan = []
    for _ in range(rounds):
        batch = []
        for p in range(n_procs):
            off = p * 4 + rng.randrange(4)
            if rng.random() < 0.5:
                batch.append((p, "store", off, {rng.randrange(n_procs): p + 1}))
            else:
                batch.append((p, "load", off, None))
        plan.append(batch)
    return plan


def _plan_hit_heavy(n_procs, rounds, seed):
    """Each proc re-reads one private line: local hits, no memory traffic
    after the first fill."""
    rng = random.Random(seed)
    plan = []
    for _ in range(rounds):
        batch = []
        for p in range(n_procs):
            if rng.random() < 0.2:
                batch.append((p, "store", p, {0: p + 1}))
            else:
                batch.append((p, "load", p, None))
        plan.append(batch)
    return plan


def _plan_sync(n_procs, rounds, seed):
    """Acquire -> flush pairs over a shared lock line plus background
    loads — the sync-op path (wb_disabled lines) through the batcher.
    Every acquire is immediately paired with its flush: an unmatched
    acquire pins the line and livelocks every other op, by design."""
    rng = random.Random(seed)
    plan = []
    for r in range(rounds):
        owner = r % n_procs
        batch = [(owner, "acquire", 0, None), (owner, "flush", 0, None)]
        for p in range(n_procs):
            if p != owner:
                batch.append((p, "load", 1 + rng.randrange(3), None))
        plan.append(batch)
    return plan


def _run_cache_plan(n_procs, bank_cycle, plan, batch, probe=None,
                    metrics=None, hotpath=None):
    sys_ = CacheSystem(n_procs, bank_cycle=bank_cycle, probe=probe,
                       metrics=metrics, hotpath=hotpath)
    all_ops = []
    for round_ops in plan:
        ops = []
        for p, kind, off, words in round_ops:
            if kind == "load":
                ops.append(sys_.load(p, off))
            elif kind == "store":
                ops.append(sys_.store(p, off, words))
            elif kind == "acquire":
                ops.append(sys_.acquire(p, off))
            else:
                ops.append(sys_.flush(p, off))
        if batch:
            sys_.run_ops_batch(ops)
        else:
            sys_.run_ops(ops)
        all_ops.extend(ops)
    sys_.check_coherence_invariant()
    return sys_, all_ops


def _fingerprint(sys_, ops):
    n_offsets = 4 * sys_.cfg.n_procs + 4
    return {
        "ops": [(op.proc, op.kind.value, op.offset, op.issue_slot,
                 op.done_slot, op.was_hit, op.retries, op.memory_accesses,
                 None if op.result is None
                 else [(w.value, w.version) for w in op.result.words])
                for op in ops],
        "dirs": [
            [(off, line.state.value, line.wb_disabled)
             for off in range(n_offsets)
             if (line := d.lookup(off)) is not None]
            for d in sys_.dirs
        ],
        "banks": [
            sorted((off, w.value, w.version) for off, w in bank.items())
            for bank in sys_.mem.banks
        ],
        "stats": (sys_.stats_local_hits, sys_.stats_memory_ops),
        "ctrl": (sys_.controller.triggered_writebacks,
                 sys_.controller.invalidations_sent),
        "slot": sys_.slot,
    }


PLANS = {
    "shared": _plan_shared,
    "private": _plan_private,
    "hit_heavy": _plan_hit_heavy,
    "sync": _plan_sync,
}


@pytest.mark.parametrize("workload", sorted(PLANS))
@pytest.mark.parametrize("n_procs,bank_cycle", SHAPES)
def test_cache_batch_bit_identical(workload, n_procs, bank_cycle):
    plan = PLANS[workload](n_procs, rounds=6, seed=n_procs * 10 + bank_cycle)
    ref_sys, ref_ops = _run_cache_plan(n_procs, bank_cycle, plan, batch=False)
    bat_sys, bat_ops = _run_cache_plan(n_procs, bank_cycle, plan, batch=True)
    assert _fingerprint(ref_sys, ref_ops) == _fingerprint(bat_sys, bat_ops)


def test_cache_batch_with_probe_matches_unprobed():
    """Observers pin the per-slot path — results must still be identical,
    and the probe must see the same event stream as a reference run."""
    plan = _plan_shared(4, rounds=4, seed=3)
    ref_probe = RecordingProbe()
    ref_sys, ref_ops = _run_cache_plan(4, 1, plan, batch=False,
                                       probe=ref_probe)
    bat_probe = RecordingProbe()
    bat_sys, bat_ops = _run_cache_plan(4, 1, plan, batch=True,
                                       probe=bat_probe)
    assert _fingerprint(ref_sys, ref_ops) == _fingerprint(bat_sys, bat_ops)
    assert [(e.source, e.event, e.t) for e in ref_probe.events] == \
           [(e.source, e.event, e.t) for e in bat_probe.events]


def test_cache_batch_with_metrics_matches_bare():
    plan = _plan_private(4, rounds=4, seed=5)
    bare_sys, bare_ops = _run_cache_plan(4, 1, plan, batch=True)
    reg = MetricsRegistry()
    obs_sys, obs_ops = _run_cache_plan(4, 1, plan, batch=True, metrics=reg)
    assert _fingerprint(bare_sys, bare_ops) == _fingerprint(obs_sys, obs_ops)
    assert reg.snapshot()  # the registry really was fed


def test_cache_batch_timeout_names_stuck_op():
    sys_ = CacheSystem(4)
    op = sys_.acquire(0, 0)  # unmatched acquire: others can never finish
    sys_.run_ops([op])
    blocked = sys_.store(1, 0, {0: 9})
    with pytest.raises(SimulationTimeout) as exc:
        sys_.run_ops_batch([blocked], max_slots=500)
    assert "proc 1" in str(exc.value)
    assert exc.value.max_slots == 500
    assert any("proc 1" in s for s in exc.value.stuck)


def test_cache_reference_timeout_is_simulation_timeout():
    """run_ops hitting max_slots raises the same descriptive error (and
    stays a RuntimeError for pre-existing callers)."""
    sys_ = CacheSystem(4)
    sys_.run_ops([sys_.acquire(0, 0)])
    blocked = sys_.store(1, 0, {0: 9})
    with pytest.raises(RuntimeError) as exc:
        sys_.run_ops([blocked], max_slots=500)
    assert isinstance(exc.value, SimulationTimeout)
    assert "proc 1" in str(exc.value)


# --------------------------------------------------------------------------
# Hierarchy layer


def _seed_local(hier, n_clusters, per):
    width = hier._cluster_width()
    for c in range(n_clusters):
        for p in range(per):
            base = (c * per + p) * 4
            for off in range(base, base + 4):
                hier.clusters[c].mem.poke_block(
                    off,
                    Block.of_values([off + i for i in range(width)], "seed"),
                )
                hier.l2[c][off] = CacheLineState.DIRTY


def _hier_plan(n_clusters, per, rounds, seed, local):
    rng = random.Random(seed)
    plan = []
    for _ in range(rounds):
        batch = []
        for g in range(n_clusters * per):
            off = g * 4 + rng.randrange(4) if local else rng.randrange(6)
            if rng.random() < 0.5:
                batch.append((g, "store", off,
                              {rng.randrange(per): rng.randrange(100)}))
            else:
                batch.append((g, "load", off, None))
        plan.append(batch)
    return plan


def _run_hier_plan(n_clusters, per, plan, batch, local, hotpath=None):
    hier = SlotAccurateHierarchy(n_clusters, per, hotpath=hotpath)
    if local:
        _seed_local(hier, n_clusters, per)
    all_ops = []
    for round_ops in plan:
        ops = [hier.load(g, off) if kind == "load"
               else hier.store(g, off, words)
               for g, kind, off, words in round_ops]
        if batch:
            hier.run_ops_batch(ops)
        else:
            hier.run_ops(ops)
        all_ops.extend(ops)
    hier.check_invariants()
    return hier, all_ops


def _hier_fingerprint(hier, ops):
    return {
        "ops": [(op.gproc, op.kind.value, op.offset, op.issue_slot,
                 op.done_slot, op.nc_fetches,
                 None if op.result is None
                 else [(w.value, w.version) for w in op.result.words])
                for op in ops],
        "l2": [sorted((k, v.value) for k, v in d.items()) for d in hier.l2],
        "gdata": sorted((k, [w.value for w in b.words])
                        for k, b in hier.global_data.items()),
        "gc": (hier.global_controller.invalidations_sent,
               hier.global_controller.triggered_l2_writebacks),
        "slot": hier.slot,
    }


@pytest.mark.parametrize("local", [True, False],
                         ids=["local_seeded", "global_shared"])
@pytest.mark.parametrize("n_clusters,per", [(2, 2), (4, 2), (2, 4)])
def test_hierarchy_batch_bit_identical(local, n_clusters, per):
    plan = _hier_plan(n_clusters, per, rounds=6,
                      seed=n_clusters * 10 + per, local=local)
    ref = _run_hier_plan(n_clusters, per, plan, batch=False, local=local)
    bat = _run_hier_plan(n_clusters, per, plan, batch=True, local=local)
    assert _hier_fingerprint(*ref) == _hier_fingerprint(*bat)


def test_hierarchy_timeout_is_simulation_timeout():
    hier = SlotAccurateHierarchy(2, 2)
    op = hier.load(0, 0)
    with pytest.raises(RuntimeError) as exc:
        hier.run_ops([op], max_slots=3)  # the L2-miss path needs far more
    assert isinstance(exc.value, SimulationTimeout)
    assert exc.value.max_slots == 3


# --------------------------------------------------------------------------
# Hot-path profiler semantics


def test_profiler_never_changes_results():
    plan = _plan_shared(8, rounds=5, seed=11)
    bare = _run_cache_plan(8, 2, plan, batch=True)
    hp = HotpathProfiler()
    profiled = _run_cache_plan(8, 2, plan, batch=True, hotpath=hp)
    assert _fingerprint(*bare) == _fingerprint(*profiled)
    assert sum(sum(ev.values()) for ev in hp.snapshot().values()) > 0


def test_profiler_counters_deterministic():
    plan = _plan_private(8, rounds=5, seed=13)
    snaps = []
    for _ in range(2):
        hp = HotpathProfiler()
        _run_cache_plan(8, 2, plan, batch=True, hotpath=hp)
        snaps.append(hp.snapshot())
    assert snaps[0] == snaps[1]


def test_conflict_free_workloads_never_fall_back():
    """The CI bench-profile gate, as a unit test: private cache traffic
    and seeded-local hierarchy traffic must keep fallback.* at zero."""
    hp = HotpathProfiler()
    plan = _plan_private(8, rounds=6, seed=17)
    _run_cache_plan(8, 2, plan, batch=True, hotpath=hp)
    hplan = _hier_plan(2, 4, rounds=6, seed=19, local=True)
    _run_hier_plan(2, 4, hplan, batch=True, local=True, hotpath=hp)
    assert hp.fallbacks() == {"cache": 0, "hier": 0}
    assert hp.get("cache", "batched_slots") > 0
    assert hp.get("hier", "batched_slots") > 0


def test_profiler_occupancy_shape():
    hp = HotpathProfiler()
    hp.count("cache", "batched_slots", 90)
    hp.count("cache", "tick.cpu", 10)
    occ = hp.occupancy()["cache"]
    assert occ["batched"] == 90 and occ["ticked"] == 10
    assert occ["batched_frac"] == pytest.approx(0.9)


def test_profiler_counter_sum_equals_cache_slots():
    """Exclusive counting, invariant form: the cache layer's counter sum
    (batched + skipped + ticked) equals exactly the slots it advanced —
    the inner CFM engine, sharing the profiler, contributes nothing."""
    hp = HotpathProfiler()
    plan = _plan_shared(8, rounds=5, seed=23)
    sys_, _ = _run_cache_plan(8, 2, plan, batch=True, hotpath=hp)
    occ = hp.occupancy()["cache"]
    assert occ["batched"] + occ["skipped"] + occ["ticked"] == sys_.slot
    assert "cfm" not in hp.snapshot()


def test_profiler_counter_sum_equals_hier_slots():
    hp = HotpathProfiler()
    hplan = _hier_plan(2, 4, rounds=6, seed=19, local=False)
    hier, _ = _run_hier_plan(2, 4, hplan, batch=True, local=False,
                             hotpath=hp)
    occ = hp.occupancy()["hier"]
    assert occ["batched"] + occ["skipped"] + occ["ticked"] == hier.slot
    for inner in ("cache", "cfm"):
        assert inner not in hp.snapshot()


def test_shared_profiler_attributes_each_slot_to_one_layer():
    """One profiler shared down the stack: slots driven by the cache batch
    engine land under "cache"; a subsequent direct CFM batch run on the
    same profiler lands under "cfm" — each exactly covering the slots that
    layer advanced while driving."""
    hp = HotpathProfiler()
    plan = _plan_private(8, rounds=4, seed=31)
    sys_, _ = _run_cache_plan(8, 2, plan, batch=True, hotpath=hp)
    cache_slots = sys_.slot
    assert "cfm" not in hp.snapshot()

    before = sys_.mem.slot
    sys_.mem.run_batch(40)  # now the CFM engine drives time itself
    occ = hp.occupancy()
    cache = occ["cache"]
    assert cache["batched"] + cache["skipped"] + cache["ticked"] == cache_slots
    cfm = occ["cfm"]
    assert cfm["batched"] + cfm["skipped"] + cfm["ticked"] \
        == sys_.mem.slot - before == 40

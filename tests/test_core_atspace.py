"""Tests for the AT-space model (§3.1.1–3.1.2, Figs 3.1/3.3)."""

import pytest

from repro.core.atspace import ATSpace, verify_busy_intervals


class TestMapping:
    def test_fig_3_3_mapping(self):
        # Fig 3.3: at slot t, processor p accesses bank (t + p) mod 4.
        space = ATSpace(4)
        assert space.bank_at(0, 0) == 0
        assert space.bank_at(1, 0) == 1
        assert space.bank_at(3, 2) == 1
        assert space.bank_at(2, 3) == 1

    def test_bank_cycle_scales_processor_offset(self):
        space = ATSpace(8, bank_cycle=2)
        # §3.1.3: bank (t + 2p) mod 8
        assert space.bank_at(3, 0) == 6
        assert space.bank_at(3, 5) == 3
        assert space.n_procs == 4

    def test_proc_at_inverts_bank_at(self):
        space = ATSpace(8, bank_cycle=2)
        for t in range(16):
            for p in range(space.n_procs):
                assert space.proc_at(space.bank_at(p, t), t) == p

    def test_proc_at_rejects_mid_cycle_banks(self):
        space = ATSpace(8, bank_cycle=2)
        # At slot 0 only even banks receive new addresses.
        with pytest.raises(ValueError):
            space.proc_at(1, 0)

    def test_out_of_range_rejected(self):
        space = ATSpace(4)
        with pytest.raises(ValueError):
            space.bank_at(4, 0)
        with pytest.raises(ValueError):
            space.proc_at(4, 0)


class TestPartitions:
    @pytest.mark.parametrize("banks,cycle", [(4, 1), (8, 1), (8, 2), (16, 4)])
    def test_partitions_mutually_exclusive(self, banks, cycle):
        assert ATSpace(banks, cycle).partitions_are_exclusive()

    def test_partition_covers_one_bank_per_slot(self):
        space = ATSpace(4)
        part = space.partition(2)
        assert len(part) == 4
        slots = {t for t, _ in part}
        assert slots == set(range(4))

    def test_c1_partitions_tile_whole_space(self):
        space = ATSpace(4)
        union = set()
        for p in range(space.n_procs):
            union |= space.partition(p)
        assert len(union) == 16  # every (slot, bank) cell exactly once

    def test_utilized_fraction(self):
        assert ATSpace(4).utilized_fraction() == 1.0
        assert ATSpace(8, 2).utilized_fraction() == 0.5
        assert ATSpace(8).accessible_fraction() == pytest.approx(1 / 8)


class TestBlockSchedule:
    def test_no_alignment_stall(self):
        """A block access starts at whatever bank the slot defines (§3.1.1)."""
        space = ATSpace(4)
        sched = space.block_schedule(1, start_slot=2)
        assert sched[0] == (2, 3)  # starts mid-period, not at bank 0
        assert [b for _, b in sched] == [3, 0, 1, 2]

    def test_every_bank_visited_exactly_once(self):
        space = ATSpace(8, 2)
        for start in range(8):
            banks = [b for _, b in space.block_schedule(2, start)]
            assert sorted(banks) == list(range(8))

    def test_block_access_time_formula(self):
        assert ATSpace(4).block_access_time() == 4
        assert ATSpace(8, 2).block_access_time() == 9

    def test_connection_table_is_permutation_free(self):
        space = ATSpace(8, 2)
        for row in space.connection_table():
            banks = list(row.values())
            assert len(set(banks)) == len(banks)  # no shared bank in a slot


class TestBusyIntervals:
    @pytest.mark.parametrize("banks,cycle", [(8, 2), (12, 3), (16, 4)])
    def test_bank_busy_windows_never_overlap(self, banks, cycle):
        """§3.1.3: consecutive addresses reach a bank ≥ c slots apart."""
        assert verify_busy_intervals(ATSpace(banks, cycle), slots=4 * banks)

    def test_invalid_space_rejected(self):
        with pytest.raises(ValueError):
            ATSpace(0)
        with pytest.raises(ValueError):
            ATSpace(6, 4)  # banks not a multiple of cycle

"""Tests for the omega network topology and circuit-switched routing."""

import pytest

from repro.network.omega import (
    INTERCHANGE,
    STRAIGHT,
    OmegaNetwork,
    RoutingConflict,
    inverse_shuffle,
    perfect_shuffle,
)


class TestShuffle:
    def test_perfect_shuffle_rotates_left(self):
        assert perfect_shuffle(0b001, 8) == 0b010
        assert perfect_shuffle(0b100, 8) == 0b001
        assert perfect_shuffle(0b110, 8) == 0b101

    def test_inverse_shuffle_inverts(self):
        for w in range(16):
            assert inverse_shuffle(perfect_shuffle(w, 16), 16) == w

    def test_shuffle_is_a_permutation(self):
        assert sorted(perfect_shuffle(w, 8) for w in range(8)) == list(range(8))

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            perfect_shuffle(0, 6)


class TestRouting:
    def test_path_lands_on_destination(self):
        net = OmegaNetwork(8)
        for s in range(8):
            for d in range(8):
                hops = net.route_path(s, d)
                assert len(hops) == 3

    def test_identity_permutation_all_straight(self):
        net = OmegaNetwork(8)
        settings = net.permutation_settings(list(range(8)))
        assert all(s == STRAIGHT for col in settings for s in col)

    def test_uniform_shift_permutations_conflict_free(self):
        """Lawrie's theorem: i → (i + t) mod N routes without conflict."""
        net = OmegaNetwork(16)
        for t in range(16):
            perm = [(i + t) % 16 for i in range(16)]
            assert net.is_conflict_free([(i, perm[i]) for i in range(16)])

    def test_known_blocking_pattern(self):
        """Omega networks are blocking: some pairs cannot coexist."""
        net = OmegaNetwork(8)
        # 0→0 and 4→1 share the stage-0 wire after shuffle (both land on
        # switch 0) and need different settings of the same output side.
        conflicting_found = False
        for d1 in range(8):
            for d2 in range(8):
                if d1 == d2:
                    continue
                if not net.is_conflict_free([(0, d1), (4, d2)]):
                    conflicting_found = True
        assert conflicting_found

    def test_output_port_collision_detected(self):
        net = OmegaNetwork(8)
        with pytest.raises(RoutingConflict):
            net.settings_for([(0, 3), (1, 3)])  # same destination

    def test_count_blocked_greedy(self):
        net = OmegaNetwork(8)
        # All-to-one: only the first request wins.
        pairs = [(s, 0) for s in range(8)]
        assert net.count_blocked(pairs) == 7

    def test_permutation_settings_requires_permutation(self):
        net = OmegaNetwork(8)
        with pytest.raises(ValueError):
            net.permutation_settings([0] * 8)

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            OmegaNetwork(6)
        with pytest.raises(ValueError):
            OmegaNetwork(1)
        net = OmegaNetwork(8)
        with pytest.raises(ValueError):
            net.route_path(8, 0)


class TestHopGeometry:
    def test_hop_setting_classification(self):
        net = OmegaNetwork(8)
        hops = net.route_path(1, 2)
        # Verified by hand in the Table 3.4 derivation:
        assert [h.setting for h in hops] == [STRAIGHT, INTERCHANGE, INTERCHANGE]

    def test_switch_count(self):
        net = OmegaNetwork(8)
        assert net.n_stages == 3
        assert net.switches_per_stage == 4

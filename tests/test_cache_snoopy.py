"""Tests for the write-once snoopy baseline (§5.1.1)."""

import pytest

from repro.cache.snoopy import SnoopyBusSystem, SnoopyState


class TestWriteOnce:
    def test_read_miss_costs_bus_block(self):
        sys_ = SnoopyBusSystem(4, bus_block_cycles=8)
        cost = sys_.read(0, 5)
        assert cost == 8
        assert sys_.read(0, 5) == 0  # now a hit

    def test_first_write_writes_through_one_word(self):
        """Goodman's write-once: first write to a valid line uses one bus
        word and moves to RESERVED."""
        sys_ = SnoopyBusSystem(4, bus_block_cycles=8, bus_word_cycles=1)
        sys_.read(0, 5)
        cost = sys_.write(0, 5)
        assert cost == 1
        line = sys_.caches[0][5 % sys_.n_lines]
        assert line.state is SnoopyState.RESERVED

    def test_second_write_is_free_and_dirty(self):
        sys_ = SnoopyBusSystem(4)
        sys_.read(0, 5)
        sys_.write(0, 5)
        assert sys_.write(0, 5) == 0
        line = sys_.caches[0][5 % sys_.n_lines]
        assert line.state is SnoopyState.DIRTY

    def test_write_through_invalidates_sharers(self):
        sys_ = SnoopyBusSystem(4)
        sys_.read(0, 5)
        sys_.read(1, 5)
        sys_.read(2, 5)
        sys_.write(0, 5)
        assert sys_.invalidations == 2
        assert not sys_.caches[1].get(5 % sys_.n_lines).holds(5)

    def test_read_flushes_remote_dirty(self):
        sys_ = SnoopyBusSystem(4)
        sys_.read(0, 5)
        sys_.write(0, 5)
        sys_.write(0, 5)  # dirty now
        cost = sys_.read(1, 5)
        assert cost >= 2 * sys_.bus_block_cycles  # flush + fill
        sys_.check_coherence_invariant()

    def test_coherence_invariant_after_storm(self):
        sys_ = SnoopyBusSystem(8)
        for i in range(40):
            p = i % 8
            if i % 3 == 0:
                sys_.write(p, i % 4)
            else:
                sys_.read(p, i % 4)
        sys_.check_coherence_invariant()


class TestScalability:
    def test_bus_serializes_everything(self):
        """The §5.1.1 weakness: every transaction occupies the single bus,
        so total bus time grows linearly with processor count."""
        def total_bus(n):
            sys_ = SnoopyBusSystem(n)
            for p in range(n):
                sys_.read(p, 0)
            return sys_.bus_busy_cycles

        assert total_bus(16) == 2 * total_bus(8)

    def test_invalid_proc_count(self):
        with pytest.raises(ValueError):
            SnoopyBusSystem(0)

"""Tests for the pure protocol transition table (Fig 5.2, Table 5.1)."""

import pytest

from repro.cache.state import (
    Action,
    CacheLineState as S,
    MemoryOp,
    ProtocolEvent as E,
    protocol_action,
    table_5_1_rows,
)


class TestTable51:
    def test_read_hit_no_memory_access(self):
        for local in (S.VALID, S.DIRTY):
            remote = S.VALID if local is S.VALID else S.INVALID
            a = protocol_action(E.READ_HIT, local, remote)
            assert a.memory_op is MemoryOp.NONE
            assert a.final_local_state is local

    def test_read_miss_clean_issues_read(self):
        a = protocol_action(E.READ_MISS, S.INVALID, S.VALID)
        assert a.memory_op is MemoryOp.READ
        assert not a.triggers_remote_writeback
        assert a.final_local_state is S.VALID

    def test_read_miss_dirty_triggers_writeback(self):
        a = protocol_action(E.READ_MISS, S.INVALID, S.DIRTY)
        assert a.memory_op is MemoryOp.READ
        assert a.triggers_remote_writeback
        assert a.final_local_state is S.VALID

    def test_write_hit_dirty_is_free(self):
        a = protocol_action(E.WRITE_HIT, S.DIRTY, S.INVALID)
        assert a.memory_op is MemoryOp.NONE
        assert a.final_local_state is S.DIRTY

    def test_write_hit_valid_needs_read_invalidate(self):
        a = protocol_action(E.WRITE_HIT, S.VALID, S.VALID)
        assert a.memory_op is MemoryOp.READ_INVALIDATE
        assert a.final_local_state is S.DIRTY

    def test_write_miss_dirty_triggers_writeback(self):
        a = protocol_action(E.WRITE_MISS, S.INVALID, S.DIRTY)
        assert a.memory_op is MemoryOp.READ_INVALIDATE
        assert a.triggers_remote_writeback
        assert a.final_local_state is S.DIRTY

    def test_full_table_row_count(self):
        rows = table_5_1_rows()
        assert len(rows) == 12
        # Exactly the paper's action strings appear.
        descs = {r[3].describe() for r in rows}
        assert descs == {
            "no memory access",
            "read",
            "read (trigger remote write-back)",
            "read-invalidate",
            "read-invalidate (trigger remote write-back)",
        }


class TestInvariantEnforcement:
    def test_dirty_is_exclusive(self):
        with pytest.raises(ValueError):
            protocol_action(E.READ_HIT, S.DIRTY, S.VALID)

    def test_hit_requires_cached_line(self):
        with pytest.raises(ValueError):
            protocol_action(E.READ_HIT, S.INVALID, S.INVALID)
        with pytest.raises(ValueError):
            protocol_action(E.WRITE_HIT, S.INVALID, S.INVALID)

    def test_miss_requires_invalid_line(self):
        with pytest.raises(ValueError):
            protocol_action(E.READ_MISS, S.VALID, S.INVALID)
        with pytest.raises(ValueError):
            protocol_action(E.WRITE_MISS, S.DIRTY, S.INVALID)

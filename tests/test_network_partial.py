"""Tests for partially synchronous omega networks (§3.2.2, Table 3.5)."""

import pytest

from repro.network.partial import (
    PartialCFSystem,
    PartiallySynchronousOmega,
    configuration_table,
)


class TestConfigurationTable:
    def test_reproduces_table_3_5(self):
        rows = configuration_table(64)
        got = [
            (r.n_modules, r.banks_per_module, r.block_words,
             r.circuit_columns, r.clock_columns, r.remark)
            for r in rows
        ]
        assert got == [
            (1, 64, 64, 0, 6, "CFM"),
            (2, 32, 32, 1, 5, ""),
            (4, 16, 16, 2, 4, ""),
            (8, 8, 8, 3, 3, ""),
            (16, 4, 4, 4, 2, ""),
            (32, 2, 2, 5, 1, ""),
            (64, 1, 1, 6, 0, "Conventional"),
        ]

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            configuration_table(48)


class TestPartiallySynchronousOmega:
    def test_fig_3_11a_structure(self):
        """4 two-bank modules: 2 circuit columns, 1 clock column."""
        net = PartiallySynchronousOmega(8, circuit_columns=2)
        assert net.n_modules == 4
        assert net.banks_per_module == 2
        assert net.clock_columns == 1
        assert net.banks_of_module(0) == [0, 1]
        assert net.banks_of_module(3) == [6, 7]

    def test_fig_3_11a_contention_sets(self):
        """Processors 0,2,4,6 and 1,3,5,7 form the two contention sets."""
        net = PartiallySynchronousOmega(8, circuit_columns=2)
        sets = {}
        for p in range(8):
            sets.setdefault(net.contention_set(p), []).append(p)
        assert sorted(sets.values()) == [[0, 2, 4, 6], [1, 3, 5, 7]]

    def test_fig_3_11b_contention_sets(self):
        """2 four-bank modules: sets (0,4), (1,5), (2,6), (3,7)."""
        net = PartiallySynchronousOmega(8, circuit_columns=1)
        sets = {}
        for p in range(8):
            sets.setdefault(net.contention_set(p), []).append(p)
        assert sorted(sets.values()) == [[0, 4], [1, 5], [2, 6], [3, 7]]

    def test_conflict_free_cluster_covers_all_sets(self):
        net = PartiallySynchronousOmega(8, circuit_columns=1)
        cluster = net.conflict_free_cluster(0)
        assert cluster == [0, 1, 2, 3]
        assert {net.contention_set(p) for p in cluster} == {0, 1, 2, 3}

    def test_module_of_bank_contiguous(self):
        net = PartiallySynchronousOmega(8, circuit_columns=2)
        assert [net.module_of_bank(b) for b in range(8)] == [0, 0, 1, 1, 2, 2, 3, 3]

    def test_clock_bank_selection_within_module(self):
        net = PartiallySynchronousOmega(8, circuit_columns=2)
        # Two procs of different contention sets never share a bank-slot.
        for t in range(4):
            b0 = net.bank_at(0, 1, t)
            b1 = net.bank_at(1, 1, t)
            assert net.module_of_bank(b0) == 1
            assert b0 != b1

    def test_header_fields(self):
        assert PartiallySynchronousOmega(8, 0).header_fields() == ["offset"]
        assert PartiallySynchronousOmega(8, 2).header_fields() == ["module", "offset"]

    def test_invalid_columns_rejected(self):
        with pytest.raises(ValueError):
            PartiallySynchronousOmega(8, 4)


class TestPartialCFSystem:
    def test_fig_3_14_configuration(self):
        """64 processors, 8 modules, 16-word blocks, β = 17."""
        sys_ = PartialCFSystem(n_procs=64, n_modules=8, bank_cycle=2)
        assert sys_.config.banks_per_module == 16
        assert sys_.beta == 17
        assert sys_.divisions_per_module == 8
        assert sys_.n_clusters == 8

    def test_cluster_members_never_conflict(self):
        sys_ = PartialCFSystem(n_procs=64, n_modules=8, bank_cycle=2)
        cluster0 = [p for p in range(64) if sys_.cluster_of(p) == 0]
        for i, a in enumerate(cluster0):
            for b in cluster0[i + 1:]:
                for m in range(8):
                    assert not sys_.conflicts(a, b, m, m)

    def test_same_division_remote_procs_conflict(self):
        sys_ = PartialCFSystem(n_procs=64, n_modules=8, bank_cycle=2)
        # procs 0 and 8 are in different clusters but share division 0
        assert sys_.division_of(0) == sys_.division_of(8)
        assert sys_.cluster_of(0) != sys_.cluster_of(8)
        assert sys_.conflicts(0, 8, 5, 5)
        assert not sys_.conflicts(0, 8, 5, 6)  # different modules

    def test_same_proc_conflicts_with_itself(self):
        sys_ = PartialCFSystem(n_procs=16, n_modules=4)
        assert sys_.conflicts(3, 3, 0, 1)

    def test_local_module_assignment(self):
        sys_ = PartialCFSystem(n_procs=64, n_modules=8, bank_cycle=2)
        assert sys_.local_module(0) == 0
        assert sys_.local_module(8) == 1
        assert sys_.local_module(63) == 7

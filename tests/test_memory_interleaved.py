"""Tests for the conventional / partially conflict-free retry simulators."""

import pytest

from repro.analysis.efficiency import conventional_efficiency, partial_cf_efficiency
from repro.memory.interleaved import (
    ConventionalMemorySimulator,
    PartialCFMemorySimulator,
    fully_conflict_free_efficiency,
)
from repro.network.partial import PartialCFSystem


class TestConventionalSimulator:
    def test_zero_rate_zero_completions(self):
        sim = ConventionalMemorySimulator(8, 8, rate=0.0, beta=17, seed=0)
        assert sim.run(1000).completed == 0

    def test_low_rate_efficiency_near_one(self):
        sim = ConventionalMemorySimulator(8, 8, rate=0.001, beta=17, seed=1)
        assert sim.measure_efficiency(60_000) > 0.9

    def test_efficiency_decreases_with_rate(self):
        """The Fig 3.13 shape: conventional efficiency falls as r grows."""
        effs = [
            ConventionalMemorySimulator(8, 8, rate=r, beta=17, seed=2)
            .measure_efficiency(40_000)
            for r in (0.01, 0.03, 0.05)
        ]
        assert effs[0] > effs[1] > effs[2]

    def test_shape_tracks_analytic_model(self):
        """Measured E(r) should land near the closed form (±0.15)."""
        for r in (0.01, 0.02, 0.04):
            sim = ConventionalMemorySimulator(8, 8, rate=r, beta=17, seed=3)
            measured = sim.measure_efficiency(60_000)
            model = conventional_efficiency(r, 8, 8, 17)
            assert measured == pytest.approx(model, abs=0.15)

    def test_retries_counted(self):
        sim = ConventionalMemorySimulator(8, 2, rate=0.05, beta=17, seed=4)
        summary = sim.run(20_000)
        assert summary.conflicts > 0
        assert summary.retries > 0

    def test_reproducible(self):
        a = ConventionalMemorySimulator(8, 8, 0.03, 17, seed=7).run(5000)
        b = ConventionalMemorySimulator(8, 8, 0.03, 17, seed=7).run(5000)
        assert a.completed == b.completed
        assert a.conflicts == b.conflicts

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ConventionalMemorySimulator(0, 8, 0.1, 17)
        with pytest.raises(ValueError):
            ConventionalMemorySimulator(8, 8, 1.5, 17)
        with pytest.raises(ValueError):
            ConventionalMemorySimulator(8, 8, 0.1, 0)


class TestPartialCFSimulator:
    def make(self, rate, locality, seed=0):
        sys_ = PartialCFSystem(n_procs=64, n_modules=8, bank_cycle=2)
        return PartialCFMemorySimulator(sys_, rate=rate, locality=locality, seed=seed)

    def test_high_locality_beats_low_locality(self):
        """The Fig 3.14 ordering: higher λ → higher efficiency."""
        e_high = self.make(0.04, 0.9, seed=1).measure_efficiency(30_000)
        e_low = self.make(0.04, 0.3, seed=1).measure_efficiency(30_000)
        assert e_high > e_low

    def test_partial_cf_beats_conventional_at_high_rate(self):
        """Fig 3.14's headline: partially conflict-free with λ ≥ 0.5 beats
        the 64-module conventional system at high access rates."""
        partial = self.make(0.05, 0.7, seed=2).measure_efficiency(30_000)
        conv = ConventionalMemorySimulator(
            64, 64, rate=0.05, beta=17, seed=2
        ).measure_efficiency(30_000)
        assert partial > conv

    def test_full_locality_is_conflict_free(self):
        """λ = 1: everyone stays in their own cluster — zero conflicts."""
        sim = self.make(0.05, 1.0, seed=3)
        summary = sim.run(20_000)
        assert summary.conflicts == 0
        assert summary.efficiency(17) == pytest.approx(1.0)

    def test_shape_tracks_analytic_model(self):
        for lam in (0.9, 0.5):
            sim = self.make(0.03, lam, seed=4)
            measured = sim.measure_efficiency(40_000)
            model = partial_cf_efficiency(0.03, lam, 8, 17)
            assert measured == pytest.approx(model, abs=0.15)

    def test_locality_bounds_checked(self):
        sys_ = PartialCFSystem(16, 4)
        with pytest.raises(ValueError):
            PartialCFMemorySimulator(sys_, 0.1, locality=1.5)


def test_fully_conflict_free_is_unit_efficiency():
    assert fully_conflict_free_efficiency() == 1.0


class TestTraceReplay:
    def _trace(self, rate=0.005, locality=0.7, seed=11, cycles=8000):
        from repro.sim.trace import Trace
        from repro.sim.workload import LocalityWorkload

        return Trace.record(
            LocalityWorkload(64, 8, rate=rate, locality=locality, seed=seed),
            cycles,
        )

    def test_replay_is_deterministic(self):
        trace = self._trace()
        sys_ = PartialCFSystem(64, 8, bank_cycle=2)
        a = PartialCFMemorySimulator(sys_, 0.0, 0.7, seed=0).run_trace(trace)
        b = PartialCFMemorySimulator(sys_, 0.0, 0.7, seed=0).run_trace(trace)
        assert (a.completed, a.conflicts) == (b.completed, b.conflicts)

    def test_partial_cf_beats_conventional_on_same_trace(self):
        """The architectural gap isolated: identical accesses, identical
        retry policy — only the contention structure differs."""
        trace = self._trace()
        sys_ = PartialCFSystem(64, 8, bank_cycle=2)
        conv = ConventionalMemorySimulator(
            64, 8, rate=0.0, beta=sys_.beta, seed=0
        ).run_trace(trace)
        part = PartialCFMemorySimulator(sys_, 0.0, 0.7, seed=0).run_trace(trace)
        assert part.efficiency(sys_.beta) > conv.efficiency(sys_.beta)
        assert part.conflicts < conv.conflicts

    def test_proc_count_mismatch_rejected(self):
        trace = self._trace()
        sim = ConventionalMemorySimulator(8, 8, rate=0.0, beta=17, seed=0)
        with pytest.raises(ValueError):
            sim.run_trace(trace)

    def test_all_events_eventually_served_or_queued(self):
        trace = self._trace(rate=0.002, cycles=4000)
        sys_ = PartialCFSystem(64, 8, bank_cycle=2)
        s = PartialCFMemorySimulator(sys_, 0.0, 0.7, seed=0).run_trace(trace)
        # Low load: nearly everything completes within the window.
        assert s.completed >= 0.8 * len(trace)

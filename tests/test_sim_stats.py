"""Tests for the measurement utilities."""

import math

import pytest

from repro.sim.stats import (
    Histogram,
    RunSummary,
    RunningStats,
    TallyCounter,
    Utilization,
)


class TestTallyCounter:
    def test_incr_and_get(self):
        c = TallyCounter()
        c.incr("retries")
        c.incr("retries", 2)
        assert c["retries"] == 3
        assert c.get("missing") == 0
        assert c.total() == 3

    def test_as_dict(self):
        c = TallyCounter()
        c.incr("a")
        assert c.as_dict() == {"a": 1}


class TestRunningStats:
    def test_mean_and_variance_match_closed_form(self):
        s = RunningStats()
        xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
        s.extend(xs)
        assert s.mean == pytest.approx(5.0)
        mean = sum(xs) / len(xs)
        var = sum((x - mean) ** 2 for x in xs) / (len(xs) - 1)
        assert s.variance == pytest.approx(var)
        assert s.stddev == pytest.approx(math.sqrt(var))
        assert s.minimum == 2.0
        assert s.maximum == 9.0

    def test_empty_stats_raise_uniformly(self):
        # The empty-accumulator contract: every statistic raises, none
        # silently returns a made-up value.
        s = RunningStats()
        for stat in ("mean", "variance", "stddev", "minimum", "maximum"):
            with pytest.raises(ValueError, match="no samples"):
                getattr(s, stat)

    def test_single_sample_zero_variance(self):
        s = RunningStats()
        s.add(3.0)
        assert s.variance == 0.0
        assert s.stddev == 0.0
        assert s.mean == 3.0
        assert s.minimum == s.maximum == 3.0


class TestHistogram:
    def test_mean(self):
        h = Histogram()
        h.add(10, 3)
        h.add(20)
        assert h.total() == 4
        assert h.mean() == pytest.approx(12.5)

    def test_percentile(self):
        h = Histogram()
        for v in range(1, 11):
            h.add(v)
        assert h.percentile(0.5) == 5
        assert h.percentile(1.0) == 10
        assert h.percentile(0.0) == 1

    def test_percentile_bounds_checked(self):
        h = Histogram()
        h.add(1)
        with pytest.raises(ValueError):
            h.percentile(1.5)
        with pytest.raises(ValueError):
            h.percentile(-0.1)

    def test_percentile_extremes_are_min_and_max(self):
        h = Histogram()
        for v, c in ((3, 5), (7, 1), (100, 2)):
            h.add(v, c)
        assert h.percentile(0.0) == 3
        assert h.percentile(1.0) == 100

    def test_percentile_single_bucket(self):
        h = Histogram()
        h.add(42, 9)
        for q in (0.0, 0.25, 0.5, 0.99, 1.0):
            assert h.percentile(q) == 42

    def test_empty_histogram_raises(self):
        with pytest.raises(ValueError):
            Histogram().mean()
        with pytest.raises(ValueError):
            Histogram().percentile(0.5)

    def test_percentile_exact_nearest_rank_pins(self):
        # Nearest-rank on 1..1000: rank = ceil(q * n) computed exactly.
        h = Histogram()
        for v in range(1, 1001):
            h.add(v)
        assert h.percentile(0.5) == 500
        assert h.percentile(0.99) == 990
        assert h.percentile(0.999) == 999

    def test_percentile_float_rounding_regression(self):
        # The binary float 0.001 is slightly ABOVE 1/1000, so the exact
        # rank of q=0.001 over n=1000 is ceil(1.0000000000000000208) = 2.
        # The old float path computed target = 0.001 * 1000 == 1.0 exactly
        # (the product rounds back down) and returned rank 1 — one rank
        # too low.  Pin the exact-arithmetic answer.
        h = Histogram()
        for v in range(1, 1001):
            h.add(v)
        assert h.percentile(0.001) == 2

    def test_percentile_tail_lands_on_last_bucket_boundary(self):
        # p99.9 of n=1000 single-count buckets is exactly rank 999: one
        # sample above it.  A weighted tail bucket absorbs the rest.
        h = Histogram()
        h.add(1, 998)
        h.add(5, 1)
        h.add(9, 1)
        assert h.percentile(0.999) == 5
        assert h.percentile(1.0) == 9


class TestUtilization:
    def test_fraction(self):
        u = Utilization()
        for busy in (True, True, False, True):
            u.tick(busy)
        assert u.fraction == pytest.approx(0.75)

    def test_empty_is_zero(self):
        assert Utilization().fraction == 0.0


class TestRunSummary:
    def test_throughput_and_efficiency(self):
        s = RunSummary(cycles=100, completed=10)
        for _ in range(10):
            s.latencies.add(20)
        assert s.throughput == pytest.approx(0.1)
        assert s.mean_latency == pytest.approx(20.0)
        assert s.efficiency(ideal_latency=17) == pytest.approx(17 / 20)

    def test_efficiency_zero_when_nothing_completed(self):
        assert RunSummary().efficiency(17) == 0.0

    def test_as_dict_schema(self):
        s = RunSummary(cycles=100, completed=4, retries=2, conflicts=1)
        for lat in (10, 10, 20, 30):
            s.latencies.add(lat)
        d = s.as_dict()
        assert d["cycles"] == 100 and d["completed"] == 4
        assert d["retries"] == 2 and d["conflicts"] == 1
        assert d["throughput"] == pytest.approx(0.04)
        assert d["latency"]["mean"] == pytest.approx(17.5)
        assert d["latency"]["p50"] == 10
        assert d["latency"]["p99"] == 30

    def test_as_dict_empty_latencies_are_none(self):
        d = RunSummary(cycles=10).as_dict()
        assert d["latency"] == {"mean": None, "p50": None, "p99": None}

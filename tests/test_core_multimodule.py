"""Tests for the slot-accurate multi-module CFM (§3.2.2)."""

import pytest

from repro.analysis.efficiency import partial_cf_efficiency
from repro.core.block import Block
from repro.core.cfm import AccessKind, AccessState
from repro.core.multimodule import MultiModuleCFM, MultiModuleWorkloadDriver
from repro.network.partial import PartialCFSystem


def make(n_procs=16, n_modules=4, bank_cycle=1):
    return MultiModuleCFM(PartialCFSystem(n_procs, n_modules, bank_cycle))


class TestPortArbitration:
    def test_single_access_completes_in_beta(self):
        mm = make()
        acc = mm.try_issue(0, AccessKind.READ, 0, offset=5)
        assert acc is not None
        mm.run_until_idle()
        assert acc.state is AccessState.COMPLETED
        assert acc.latency == mm.beta

    def test_cluster_members_share_a_module_without_conflict(self):
        """One conflict-free cluster: all divisions hit module 0 at once."""
        mm = make()
        cluster0 = [p for p in range(16) if mm.system.cluster_of(p) == 0]
        accs = [
            mm.try_issue(p, AccessKind.READ, 0, offset=p) for p in cluster0
        ]
        assert all(a is not None for a in accs)
        mm.run_until_idle()
        assert all(a.latency == mm.beta for a in accs)
        assert mm.rejections == 0

    def test_same_division_remote_procs_collide(self):
        """Two processors of one contention set, same module: the second is
        rejected at the circuit columns."""
        mm = make()
        p, q = 0, 4  # same division (16 procs / 4 modules → divisions of 4)
        assert mm.system.division_of(p) == mm.system.division_of(q)
        assert mm.try_issue(p, AccessKind.READ, 2, offset=0) is not None
        assert mm.try_issue(q, AccessKind.READ, 2, offset=1) is None
        assert mm.rejections == 1

    def test_port_released_after_completion(self):
        mm = make()
        mm.try_issue(0, AccessKind.READ, 2, offset=0)
        mm.run_until_idle()
        assert mm.try_issue(4, AccessKind.READ, 2, offset=1) is not None

    def test_different_modules_independent(self):
        mm = make()
        a = mm.try_issue(0, AccessKind.READ, 0, offset=0)
        b = mm.try_issue(4, AccessKind.READ, 1, offset=0)
        assert a is not None and b is not None
        mm.run_until_idle()
        assert a.latency == b.latency == mm.beta

    def test_write_lands_in_the_right_module(self):
        mm = make()
        width = mm.module_cfg.n_banks
        mm.try_issue(
            0, AccessKind.WRITE, 3, offset=7,
            data=Block.of_values([9] * width),
        )
        mm.run_until_idle()
        assert mm.modules[3].peek_block(7).values == [9] * width
        assert mm.modules[0].peek_block(7).values == [0] * width

    def test_module_out_of_range(self):
        mm = make()
        with pytest.raises(ValueError):
            mm.try_issue(0, AccessKind.READ, 4, offset=0)


class TestWorkloadDriver:
    def test_full_locality_is_conflict_free(self):
        sys_ = PartialCFSystem(16, 4)
        drv = MultiModuleWorkloadDriver(sys_, rate=0.05, locality=1.0, seed=0)
        summary = drv.run(8_000)
        assert summary.conflicts == 0
        assert summary.efficiency(drv.machine.beta) == pytest.approx(1.0)

    def test_efficiency_tracks_analytic_model(self):
        """The slot-accurate machine lands near E(r, λ) too."""
        sys_ = PartialCFSystem(32, 4, bank_cycle=1)
        drv = MultiModuleWorkloadDriver(sys_, rate=0.03, locality=0.7, seed=1)
        measured = drv.measure_efficiency(20_000)
        model = partial_cf_efficiency(0.03, 0.7, 4, drv.machine.beta)
        assert measured == pytest.approx(model, abs=0.25)

    def test_slot_accurate_agrees_with_transaction_level(self):
        """Cross-validation of the two partial-CF simulators."""
        from repro.memory.interleaved import PartialCFMemorySimulator

        sys_ = PartialCFSystem(32, 4, bank_cycle=1)
        slot = MultiModuleWorkloadDriver(
            sys_, rate=0.03, locality=0.6, seed=2
        ).measure_efficiency(20_000)
        txn = PartialCFMemorySimulator(
            sys_, rate=0.03, locality=0.6, seed=2
        ).measure_efficiency(20_000)
        assert slot == pytest.approx(txn, abs=0.15)

    def test_locality_ordering_preserved(self):
        sys_ = PartialCFSystem(32, 4)
        effs = [
            MultiModuleWorkloadDriver(
                sys_, rate=0.04, locality=lam, seed=3
            ).measure_efficiency(10_000)
            for lam in (0.3, 0.9)
        ]
        assert effs[1] > effs[0]

    def test_invalid_params(self):
        sys_ = PartialCFSystem(16, 4)
        with pytest.raises(ValueError):
            MultiModuleWorkloadDriver(sys_, rate=1.5, locality=0.5)
